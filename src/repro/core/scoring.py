"""Flat-array router state and O(deg) delta scoring for SABRE's hot loop.

The reference scorer (:func:`repro.core.heuristic.score_layout`) rescores
the *entire* front layer ``F`` and extended set ``E`` for every candidate
SWAP, making each search step ``O(|candidates| * (|F| + |E|))`` over a
list-of-lists distance matrix.  A SWAP only moves two qubits, though, so
every Eq. 2 term not touching those two qubits is unchanged.  This module
exploits that:

- :class:`FlatDistance` flattens ``D[][]`` into one contiguous 1-D
  ``array('d')`` buffer (``D[a][b] == buf[a * n + b]``), removing a level
  of pointer chasing from every distance lookup and making the matrix
  cheap to cache, copy, and ship to worker processes.
- :class:`RouterState` holds the per-traversal mutable state: the front
  and extended gate pairs, a per-qubit -> gate-term index, per-step base
  sums for ``F`` and ``E``, and the candidate SWAP edge set (maintained
  incrementally as the layout changes).  A candidate SWAP on physical
  edge ``(pa, pb)`` is then scored in ``O(deg_F + deg_E)`` — the handful
  of terms whose qubits actually move — instead of ``O(|F| + |E|)``.

Exactness: a gate *between* the two swapped qubits keeps its distance
(``D`` is symmetric for every matrix this project produces), so its term
is skipped entirely.  All remaining terms are adjusted by the difference
of two matrix entries.  Sums therefore agree with the reference scorer
up to float-addition ordering, which the differential suite
(``tests/core/test_differential.py``) pins down to identical winner sets
and identical routed circuits.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, insort
from itertools import chain
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.heuristic import HeuristicConfig
from repro.exceptions import MappingError

#: Shared empty tuple so ``partners.get(q, _NO_PARTNERS)`` never allocates.
_NO_PARTNERS: Tuple[int, ...] = ()

#: Shared empty index array (vector scorer's "no front/extended set").
_EMPTY_IDX = np.zeros(0, dtype=np.intp)

#: Scores within this tolerance are considered tied (random tie-break).
#: Single source of truth for every scorer (the router imports it).
SCORE_EPSILON = 1e-9
_SCORE_EPSILON = SCORE_EPSILON


def device_edge_arrays(
    neighbors: Sequence[Sequence[int]],
) -> Tuple[np.ndarray, np.ndarray]:
    """All device edges as two parallel intp arrays, ``pa < pb``, sorted.

    The vector scorer derives each step's candidate list by masking
    this fixed edge list with the front-home mask — the lexicographic
    order matches :meth:`RouterState.candidates` exactly, so winner
    indices (and hence tie-break RNG draws) line up with the scalar
    scorers.  Built once per router and shared read-only by every run.
    """
    pairs = sorted(
        {
            (p, nb) if p < nb else (nb, p)
            for p, nbs in enumerate(neighbors)
            for nb in nbs
        }
    )
    pa = np.fromiter((e[0] for e in pairs), dtype=np.intp, count=len(pairs))
    pb = np.fromiter((e[1] for e in pairs), dtype=np.intp, count=len(pairs))
    return pa, pb


class FlatDistance:
    """A distance matrix flattened into a single 1-D ``array('d')``.

    ``buf[a * n + b]`` is ``D[a][b]``.  Instances are picklable (workers
    in the trial/batch engine receive them directly) and cheap to copy.

    Attributes:
        n: matrix dimension (number of physical qubits).
        buf: the flat row-major buffer, length ``n * n``.
        symmetric: True when ``D[a][b] == D[b][a]`` everywhere.  Every
            matrix built by :mod:`repro.hardware.distance` is symmetric;
            the flag exists so the fast scorer can refuse (fall back to
            the reference scorer) on exotic asymmetric inputs.
    """

    __slots__ = ("n", "buf", "symmetric", "_np")

    def __init__(self, n: int, buf: array, symmetric: Optional[bool] = None):
        if len(buf) != n * n:
            raise MappingError(
                f"flat distance buffer has {len(buf)} entries, expected {n * n}"
            )
        self.n = n
        self.buf = buf
        self._np: Optional[np.ndarray] = None
        if symmetric is None:
            symmetric = all(
                buf[i * n + j] == buf[j * n + i]
                for i in range(n)
                for j in range(i + 1, n)
            )
        self.symmetric = symmetric

    @classmethod
    def from_matrix(cls, rows: Sequence[Sequence[float]]) -> "FlatDistance":
        """Flatten a nested ``N x N`` matrix (validates row lengths)."""
        if isinstance(rows, FlatDistance):
            return rows
        n = len(rows)
        if any(len(row) != n for row in rows):
            raise MappingError("distance matrix must be square")
        return cls(n, array("d", chain.from_iterable(rows)))

    def as_array(self) -> np.ndarray:
        """Zero-copy ``(n, n)`` numpy view of the flat buffer.

        Built with ``np.frombuffer`` over the ``array('d')`` storage —
        no copy, and the pickle format (:meth:`__getstate__`) is
        untouched.  The view is marked read-only: every consumer (the
        vector scorer, benchmarks, reports) treats distances as frozen,
        and an accidental in-place write would corrupt all of them.
        Cached after the first call.
        """
        if self._np is None:
            view = np.frombuffer(self.buf, dtype=np.float64).reshape(
                self.n, self.n
            )
            view.flags.writeable = False
            self._np = view
        return self._np

    def row(self, i: int) -> Sequence[float]:
        """Row ``i`` as a zero-copy (read-only) view.

        Previously allocated a fresh list per call, which made repeated
        row reads on large devices an accidental O(n) copy each time;
        callers that need a mutable list can wrap it in ``list(...)``
        (:meth:`to_matrix` does).
        """
        return self.as_array()[i]

    def to_matrix(self) -> List[List[float]]:
        """Rebuild the nested list-of-lists view (fresh, mutable)."""
        n = self.n
        buf = self.buf
        return [list(buf[i * n : (i + 1) * n]) for i in range(n)]

    def copy(self) -> "FlatDistance":
        return FlatDistance(self.n, array("d", self.buf), self.symmetric)

    def __getstate__(self):
        return (self.n, self.buf.tobytes(), self.symmetric)

    def __setstate__(self, state):
        n, raw, symmetric = state
        buf = array("d")
        buf.frombytes(raw)
        self.n = n
        self.buf = buf
        self.symmetric = symmetric
        self._np = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlatDistance):
            return NotImplemented
        return self.n == other.n and self.buf == other.buf

    def __repr__(self) -> str:
        return f"FlatDistance(n={self.n}, symmetric={self.symmetric})"


class RouterState:
    """Per-traversal routing state: term indices, base sums, candidates.

    One instance per :meth:`SabreRouter.run` call (never shared across
    concurrent runs).  The router drives it through four events:

    - :meth:`set_front` whenever a gate executed (``F``/``E`` changed);
    - :meth:`begin_step` before scoring a step's candidates;
    - :meth:`swap_score` once per candidate SWAP;
    - :meth:`on_swap_applied` after a SWAP mutates the layout (keeps
      the candidate edge set in sync without a from-scratch rebuild).
    """

    __slots__ = (
        "n",
        "buf",
        "neighbors",
        "config",
        "front_pairs",
        "ext_pairs",
        "partner_f",
        "partners_e",
        "front_qubits",
        "front_homes",
        "cand_set",
        "cand_list",
        "sum_f",
        "sum_e",
        "_weight",
        "_prev_f",
        "_prev_e",
    )

    def __init__(
        self,
        flat: FlatDistance,
        neighbors: Sequence[Sequence[int]],
        config: HeuristicConfig,
        buf: Optional[List[float]] = None,
    ) -> None:
        self.n = flat.n
        # A plain list of (pre-boxed) floats: array('d') would box a
        # fresh float object on every read, and this buffer is read a
        # few hundred thousand times per deep traversal.  Callers that
        # route many times against one device pass the listified buffer
        # in (it is read-only here), hoisting the O(N^2) conversion out
        # of the per-run path.
        self.buf: List[float] = flat.buf.tolist() if buf is None else buf
        self.neighbors = neighbors
        self.config = config
        self._weight = config.extended_set_weight
        self.front_pairs: List[Tuple[int, int]] = []
        self.ext_pairs: List[Tuple[int, int]] = []
        # Per-qubit gate-term indices as flat lists (index = logical
        # qubit): list indexing beats dict lookups in the candidate
        # loop.  Front gates are vertex-disjoint (two ready gates can
        # never share a qubit), so each qubit has at most ONE front
        # partner — a scalar with -1 for "none", no inner loop needed.
        # Extended-set gates can repeat qubits, so those stay lists
        # (untouched qubits share one immutable empty tuple).
        self.partner_f: List[int] = [-1] * self.n
        self.partners_e: List[Sequence[int]] = [_NO_PARTNERS] * self.n
        #: Qubits whose table entries the *current* front installed —
        #: what the next set_front must undo (persistent-table scheme).
        self._prev_f: List[int] = []
        self._prev_e: List[int] = []
        self.front_qubits: Set[int] = set()
        self.front_homes: Set[int] = set()
        self.cand_set: Set[Tuple[int, int]] = set()
        self.cand_list: List[Tuple[int, int]] = []
        self.sum_f = 0.0
        self.sum_e = 0.0

    # ------------------------------------------------------------------
    # Front-layer events
    # ------------------------------------------------------------------

    def set_front(
        self,
        front_pairs: Sequence[Tuple[int, int]],
        ext_pairs: Sequence[Tuple[int, int]],
        l2p: Sequence[int],
    ) -> None:
        """Rebuild pair lists, per-qubit term indices, and candidates.

        Takes the front layer ``F`` and extended set ``E`` as plain
        logical-qubit pairs (a gate's ``.qubits`` tuple, or the shared
        ``pairs[i]`` tuples of a :class:`~repro.circuits.flatdag.FlatDag`)
        so gate objects never enter the scoring state.  Called only
        when a gate executed (the front layer changed) — consecutive
        SWAP selections reuse everything built here.

        The per-qubit tables are *persistent*: entries touched by the
        previous front are undone (``_prev_f``/``_prev_e``) instead of
        reallocating two n-sized tables per refresh — a refresh happens
        for every executed gate, and the tables only ever have
        ``O(|F| + |E|)`` live entries.
        """
        # Undo the previous front/extended entries, then install the
        # new ones.  Net cost per refresh: O(|F_prev| + |F_new|).
        partner_f = self.partner_f
        for q in self._prev_f:
            partner_f[q] = -1
        partners_e = self.partners_e
        for q in self._prev_e:
            partners_e[q] = _NO_PARTNERS
        self.front_pairs = front_pairs = list(front_pairs)
        self.ext_pairs = ext_pairs = list(ext_pairs)
        front_qubits: Set[int] = set()
        prev_f: List[int] = []
        for a, b in front_pairs:
            if partner_f[a] != -1 or partner_f[b] != -1:
                # Leave the tables coherent before failing.
                for q in prev_f:
                    partner_f[q] = -1
                self._prev_f = []
                self._prev_e = []
                raise MappingError(
                    "front layer gates must be vertex-disjoint; got a qubit "
                    "in two ready gates"
                )
            partner_f[a] = b
            partner_f[b] = a
            prev_f.append(a)
            prev_f.append(b)
            front_qubits.add(a)
            front_qubits.add(b)
        self._prev_f = prev_f
        prev_e: List[int] = []
        for a, b in ext_pairs:
            pe = partners_e[a]
            if pe is _NO_PARTNERS:
                partners_e[a] = [b]
                prev_e.append(a)
            else:
                pe.append(b)  # type: ignore[union-attr]
            pe = partners_e[b]
            if pe is _NO_PARTNERS:
                partners_e[b] = [a]
                prev_e.append(b)
            else:
                pe.append(a)  # type: ignore[union-attr]
        self._prev_e = prev_e
        old_qubits = self.front_qubits
        self.front_qubits = front_qubits
        # Candidate maintenance by front diff: qubits that left the
        # front take their homes' edges out (unless another front home
        # keeps an edge alive), qubits that entered bring theirs in.
        # A refresh typically swaps a handful of qubits while the
        # from-scratch rebuild walks every front home; the rebuild
        # stays available as the oracle this must always agree with
        # (distinct logical qubits occupy distinct homes, so removed
        # and added home sets never overlap).
        homes = self.front_homes
        cand = self.cand_set
        cand_list = self.cand_list
        neighbors = self.neighbors
        removed = old_qubits - front_qubits
        added = front_qubits - old_qubits
        removed_homes = [l2p[q] for q in removed]
        added_homes = [l2p[q] for q in added]
        for h in removed_homes:
            homes.discard(h)
        for h in added_homes:
            homes.add(h)
        for h in removed_homes:
            for nb in neighbors[h]:
                if nb not in homes:
                    edge = (h, nb) if h < nb else (nb, h)
                    if edge in cand:
                        cand.discard(edge)
                        del cand_list[bisect_left(cand_list, edge)]
        for h in added_homes:
            for nb in neighbors[h]:
                edge = (h, nb) if h < nb else (nb, h)
                if edge not in cand:
                    cand.add(edge)
                    insort(cand_list, edge)

    def rebuild_candidates(self, l2p: Sequence[int]) -> None:
        """From-scratch candidate edge set: edges touching a front home.

        This is the §IV-C1 search-space reduction; incremental updates
        (:meth:`on_swap_applied`) must always agree with this rebuild —
        the invariant the candidate-cache tests pin down.
        """
        homes = {l2p[q] for q in self.front_qubits}
        self.front_homes = homes
        cand: Set[Tuple[int, int]] = set()
        neighbors = self.neighbors
        for p in homes:
            for nb in neighbors[p]:
                cand.add((p, nb) if p < nb else (nb, p))
        self.cand_set = cand
        self.cand_list = sorted(cand)

    def candidates(self) -> List[Tuple[int, int]]:
        """Sorted candidate edges — deterministic iteration order, so
        tie-break sets (and hence ``rng.choice``) match the reference
        from-scratch path exactly.  Maintained incrementally (a sorted
        list kept in lock-step with :attr:`cand_set`), so no per-step
        sort.  Callers iterate only; they must not mutate the list."""
        return self.cand_list

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def begin_step(self, l2p: Sequence[int]) -> None:
        """Recompute the step's base sums over ``F`` and ``E``.

        Once per SWAP selection (``O(|F| + |E|)``), in the same gate
        order as the reference scorer so float rounding tracks it as
        closely as possible.  Recomputing per step (rather than carrying
        sums across steps) keeps errors from accumulating over long
        SWAP chains.
        """
        buf = self.buf
        n = self.n
        total = 0.0
        for a, b in self.front_pairs:
            total += buf[l2p[a] * n + l2p[b]]
        self.sum_f = total
        total = 0.0
        for a, b in self.ext_pairs:
            total += buf[l2p[a] * n + l2p[b]]
        self.sum_e = total

    def swap_score(
        self, qa: int, qb: int, pa: int, pb: int, l2p: Sequence[int]
    ) -> float:
        """Distance part of the heuristic after SWAPping ``qa <-> qb``.

        ``pa``/``pb`` are the current homes of ``qa``/``qb``.  Only the
        terms whose gates touch the swapped qubits are adjusted; gates
        between ``qa`` and ``qb`` themselves keep their (symmetric)
        distance and are skipped.  Decay and the SWAP-cost penalty are
        applied by the router — they depend on the SWAP, not the layout.
        """
        buf = self.buf
        n = self.n
        row_a = pa * n
        row_b = pb * n
        delta_f = 0.0
        other = self.partner_f[qa]
        if other >= 0 and other != qb:
            po = l2p[other]
            delta_f += buf[row_b + po] - buf[row_a + po]
        other = self.partner_f[qb]
        if other >= 0 and other != qa:
            po = l2p[other]
            delta_f += buf[row_a + po] - buf[row_b + po]
        if self.config.mode == "basic":
            return self.sum_f + delta_f
        score = (self.sum_f + delta_f) / len(self.front_pairs)
        if self.ext_pairs:
            delta_e = 0.0
            for other in self.partners_e[qa]:
                if other != qb:
                    po = l2p[other]
                    delta_e += buf[row_b + po] - buf[row_a + po]
            for other in self.partners_e[qb]:
                if other != qa:
                    po = l2p[other]
                    delta_e += buf[row_a + po] - buf[row_b + po]
            score += self._weight * (self.sum_e + delta_e) / len(self.ext_pairs)
        return score

    # ------------------------------------------------------------------
    # Layout events
    # ------------------------------------------------------------------

    def on_swap_applied(self, qa: int, qb: int, pa: int, pb: int) -> None:
        """Incrementally maintain the candidate set after a SWAP.

        ``pa``/``pb`` are the homes of ``qa``/``qb`` *before* the swap.
        At most one front-layer home moves (front qubits occupy distinct
        homes), so the update touches only the two endpoints' edges —
        ``O(deg)`` instead of rebuilding from every front qubit.
        """
        a_front = qa in self.front_qubits
        b_front = qb in self.front_qubits
        if a_front == b_front:
            # Both in the front layer: their homes trade places and the
            # union of incident edges is unchanged.  Neither in the
            # front layer: no front home moved.
            return
        moved_from, moved_to = (pa, pb) if a_front else (pb, pa)
        homes = self.front_homes
        homes.discard(moved_from)
        homes.add(moved_to)
        cand = self.cand_set
        cand_list = self.cand_list
        for nb in self.neighbors[moved_from]:
            if nb not in homes:
                edge = (moved_from, nb) if moved_from < nb else (nb, moved_from)
                if edge in cand:
                    cand.discard(edge)
                    del cand_list[bisect_left(cand_list, edge)]
        for nb in self.neighbors[moved_to]:
            edge = (moved_to, nb) if moved_to < nb else (nb, moved_to)
            if edge not in cand:
                cand.add(edge)
                insort(cand_list, edge)


class VectorDevice:
    """Device-constant arrays for the batched ``vector`` scorer.

    Built once per router (vector mode only) and shared read-only by
    every :class:`VectorBlock`.  The kernel compacts each call to the
    candidate lanes it actually scores (via one boolean gather +
    ``nonzero`` — numpy-side, so python stays out of the hot loop), and
    everything here is laid out "stacked" to make those lane gathers
    one `take` each: index ``j`` in ``[0, 2E)`` is side ``j // E`` of
    edge ``j % E`` — all a-sides first, then all b-sides, giving each
    edge two directed half-views with no per-step packing.

    Attributes:
        n: physical qubit count.
        num_edges: ``E``, undirected device edges (sorted, ``pa < pb``).
        dist: the flat ``(n*n,)`` float64 distance buffer.
        epa / epb: edge endpoint arrays, lexicographically sorted — the
            same order as :meth:`RouterState.candidates`, so winner
            indices (hence tie-break RNG draws) line up with the scalar
            scorers.
        ep_s / ep_o: stacked "self" / "other" endpoints, ``(2E,)``.
        row_s / row_o: premultiplied row offsets (``ep * n``).
        ep_cat: ``(4E,)`` fused gather index into a ``[l2p | PF]``
            per-trial table: first ``2E`` entries read occupants,
            second ``2E`` read the occupants' front-partner homes.
        gcat: ``(10E,)`` concatenation ``[ep_cat | row_s | row_o |
            ep_o]`` — every per-edge constant the kernel gathers,
            fused so one ``take`` per call replaces four.
        pen_base: ``D[edge] - 1.0`` per edge (the SWAP-cost penalty
            term's layout-independent factor).
    """

    __slots__ = (
        "n",
        "num_edges",
        "dist",
        "epa",
        "epb",
        "ep_s",
        "ep_o",
        "row_s",
        "row_o",
        "ep_cat",
        "gcat",
        "pen_base",
    )

    def __init__(
        self, flat: FlatDistance, neighbors: Sequence[Sequence[int]]
    ) -> None:
        n = flat.n
        self.n = n
        self.dist = flat.as_array().reshape(-1)
        self.epa, self.epb = device_edge_arrays(neighbors)
        E = len(self.epa)
        self.num_edges = E
        self.ep_s = np.concatenate([self.epa, self.epb])
        self.ep_o = np.concatenate([self.epb, self.epa])
        self.row_s = self.ep_s * n
        self.row_o = self.ep_o * n
        self.ep_cat = np.concatenate([self.ep_s, self.ep_s + n])
        self.gcat = np.concatenate(
            [self.ep_cat, self.row_s, self.row_o, self.ep_o]
        )
        self.pen_base = self.dist[self.epa * n + self.epb] - 1.0


class VectorBlock:
    """Trial-major stacked router state for the batched ``vector`` scorer.

    Holds ``K`` trials' scoring state as rows of ``(K, ·)`` arrays and
    scores all of them in one numpy kernel call per search step.  Solo
    routing is simply ``K == 1``; the trial ensemble passes ``K > 1``
    and steps every stuck trial per call, amortising numpy dispatch
    overhead (the dominant cost at device-sized arrays) across trials.

    Per-trial state (row ``t``):

    - ``pl[t]``: fused ``[p2l | PF]`` table, length ``2n``, both halves
      indexed by *physical* qubit — the occupant table followed by the
      front-partner-home table (``PF[p]`` = home of the front partner
      of the occupant of ``p``, ``-1`` when the occupant has no front
      gate).  One fused gather via :attr:`VectorDevice.ep_cat` yields
      both the occupant and its partner's home for every edge side.
    - ``l2p[t]``: the logical-to-physical mirror (partner-home gathers
      and the router's batched ready scan index by logical qubit).
    - ``pfq[t]`` (qubit -> front partner), ``hm[t]``
      (front-home mask), ``ecnt[t]`` / ``eoff[t]`` + a per-trial
      partner stream (extended-set CSR keyed by logical qubit).
    - ``dv[t]``: the decay table — handed to each trial's
      :class:`~repro.core.heuristic.DecayArray` as a row view.

    Scoring modes per front refresh: fronts with at most
    ``scalar_max_front`` gates are scored by a scalar delta loop
    (python dicts built at :meth:`set_front`; numpy dispatch would
    dominate) — bit-compatible with the ``fast`` scorer's loop.  Wider
    fronts use the kernel (:meth:`score_rows`).  Either way the layout
    mirrors stay current; front-shaped arrays are rebuilt wholesale at
    each refresh, so stale state can never leak across modes.

    Exactness: kernel scores agree with the ``fast`` scorer up to
    float-addition order (same tolerance argument as fast-vs-reference)
    and winner sets are recovered by the epsilon-gap rule of
    :meth:`_winners`, with an exact sequential replay on the rare
    boundary case — the differential suite pins all of it down.
    """

    def __init__(
        self,
        device: VectorDevice,
        neighbors: Sequence[Sequence[int]],
        config: HeuristicConfig,
        buf: List[float],
        rows: int = 1,
        scalar_max_front: int = 4,
    ) -> None:
        self.device = device
        self.neighbors = neighbors
        self.config = config
        self.buf = buf
        self.rows = K = rows
        self.scalar_max_front = scalar_max_front
        self._basic = config.mode == "basic"
        self._weight = config.extended_set_weight
        self._penalty = config.swap_cost_penalty
        self._uses_decay = config.uses_decay
        n = device.n
        E = device.num_edges
        E2 = 2 * E
        # --- per-trial state ------------------------------------------
        self.pl = np.zeros((K, 2 * n), dtype=np.intp)
        self.l2p = np.zeros((K, n), dtype=np.intp)
        self.pfq = np.full((K, n), -1, dtype=np.intp)
        self.hm = np.zeros((K, n), dtype=bool)
        self.ecnt = np.zeros((K, n), dtype=np.intp)
        self.eoff = np.zeros((K, n), dtype=np.intp)
        self.dv = np.ones((K, n))
        self._pl_flat = self.pl.reshape(-1)
        self._l2p_flat = self.l2p.reshape(-1)
        self._ecnt_flat = self.ecnt.reshape(-1)
        self._eoff_flat = self.eoff.reshape(-1)
        self._dv_flat = self.dv.reshape(-1)
        self._hm_flat = self.hm.reshape(-1)
        # Per-trial python-side state (index = row).
        self.narrow = [True] * K
        # Running Eq.-2 sums and front-size coefficients are (K,)
        # arrays so the kernel preamble is a handful of fused takes
        # over the active rows instead of a python loop.
        self.sum_f = np.zeros(K)
        self.sum_e = np.zeros(K)
        self._lf_f = np.ones(K)
        self._le = np.zeros(K, dtype=np.intp)
        self._c1_row = np.ones(K)
        self._c2_row = np.zeros(K)
        self.sums_dirty = [False] * K
        self._any_dirty = False
        self._fa = [_EMPTY_IDX] * K
        self._fb = [_EMPTY_IDX] * K
        self._ea = [_EMPTY_IDX] * K
        self._eb = [_EMPTY_IDX] * K
        self._stream: List[np.ndarray] = [_EMPTY_IDX] * K
        # Narrow-front scalar structures.
        self._front_pairs: List[list] = [[] for _ in range(K)]
        self._ext_pairs: List[list] = [[] for _ in range(K)]
        self._pfd: List[dict] = [{} for _ in range(K)]
        self._ped: List[dict] = [{} for _ in range(K)]
        # --- kernel scratch (written with out= every call) ------------
        # Lane dimension: the kernel compacts each call to the active
        # rows' *candidate* lanes (edges touching a front home), C of
        # them, C <= A*E <= K*E — every element op below runs over C
        # (or 2C/4C side-stacked) entries, not K*E dense lanes.
        L = K * E
        self._actn = np.zeros((K, E2), dtype=np.intp)  # hm gather idx
        self._hv = np.zeros((K, E2), dtype=bool)
        self._cm = np.zeros((K, E), dtype=bool)
        self._ce10 = np.zeros(10 * L, dtype=np.intp)
        self._q4 = np.zeros(4 * L, dtype=np.intp)
        self._g10 = np.zeros(10 * L, dtype=np.intp)
        self._g4 = np.zeros(4 * L)
        self._d2 = np.zeros(2 * L)
        self._m2 = np.zeros(2 * L, dtype=bool)
        self._mb2 = np.zeros(2 * L, dtype=bool)
        self._ix2 = np.zeros(2 * L, dtype=np.intp)
        self._cnts2 = np.zeros(2 * L, dtype=np.intp)
        self._soff2 = np.zeros(2 * L, dtype=np.intp)
        self._csb2 = np.zeros(2 * L, dtype=np.intp)
        self._starts2 = np.zeros(2 * L, dtype=np.intp)
        self._qo2 = np.zeros(2 * L, dtype=np.intp)
        self._bnl = np.zeros(L, dtype=np.intp)
        self._sbl = np.zeros(L, dtype=np.intp)
        self._dv2 = np.zeros(2 * L)
        self._df = np.zeros(L)
        self._ue = np.zeros(L)
        self._sc = np.zeros(L)
        self._fl = np.zeros(L)
        self._dm = np.zeros(L)
        self._lol = np.zeros(L)
        self._within = np.zeros(L, dtype=bool)
        self._w2b = np.zeros(L, dtype=bool)
        self._wint = np.zeros(L, dtype=np.intp)
        self._j_ar = np.arange(2 * L, dtype=np.intp)
        self._off10 = (np.arange(10, dtype=np.intp) * E)[:, None]
        self._lane_ce = _EMPTY_IDX
        self._lane_c = 0
        self._has_ext = False
        # Per-active-row coefficient / winner scalars (position-indexed).
        self._c1a = np.ones(K)
        self._c2a = np.zeros(K)
        self._ba = np.zeros(K)
        self._sfa = np.zeros(K)
        self._sea = np.zeros(K)
        self._lfa = np.zeros(K)
        self._lea = np.zeros(K, dtype=np.intp)
        self._n1 = np.zeros(K, dtype=np.intp)
        self._n2 = np.zeros(K, dtype=np.intp)
        # Expansion scratch, grown on demand (`tot`-sized working set).
        self._cap = 0
        self._grow(1024)
        self._pen = (
            config.swap_cost_penalty * device.pen_base
            if config.swap_cost_penalty
            else None
        )
        # Concatenated extended-set partner streams (rebuilt lazily).
        self._part_cat = _EMPTY_IDX
        self._stream_base_row = np.zeros(K, dtype=np.intp)
        self._streams_dirty = True

    # ------------------------------------------------------------------
    # Per-trial events
    # ------------------------------------------------------------------

    def bind_layout(self, row: int, l2p: Sequence[int]) -> None:
        """Load a trial's initial layout; reset its front-shaped state."""
        n = self.device.n
        plr = self.pl[row]
        l2r = self.l2p[row]
        l2r[:] = l2p
        plr[:n][l2r] = np.arange(n, dtype=np.intp)
        plr[n:].fill(-1)
        self.pfq[row].fill(-1)
        self.hm[row].fill(False)
        self.ecnt[row].fill(0)
        self._stream[row] = _EMPTY_IDX
        self._streams_dirty = True
        self.narrow[row] = True
        self._front_pairs[row] = []
        self._ext_pairs[row] = []

    def set_front(
        self,
        row: int,
        front_nodes: Sequence[int],
        ext_nodes: Sequence[int],
        qa_np: np.ndarray,
        qb_np: np.ndarray,
        pairs: Sequence[Tuple[int, int]],
        l2p: Sequence[int],
    ) -> None:
        """Rebuild row ``row``'s front/extended structures.

        ``qa_np``/``qb_np``/``pairs`` come from the trial's FlatDag.
        Narrow fronts build the scalar dicts; wide fronts build the
        numpy tables the kernel gathers from.  Called only when a gate
        executed, so consecutive SWAP selections share everything here.
        """
        lf = len(front_nodes)
        narrow = lf <= self.scalar_max_front
        self.narrow[row] = narrow
        if narrow:
            fpairs = [pairs[i] for i in front_nodes]
            epairs = [pairs[i] for i in ext_nodes]
            self._front_pairs[row] = fpairs
            self._ext_pairs[row] = epairs
            pfd: dict = {}
            for a, b in fpairs:
                pfd[a] = b
                pfd[b] = a
            self._pfd[row] = pfd
            ped: dict = {}
            for a, b in epairs:
                ped.setdefault(a, []).append(b)
                ped.setdefault(b, []).append(a)
            self._ped[row] = ped
            return
        dev = self.device
        n = dev.n
        D = dev.dist
        fidx = np.fromiter(front_nodes, dtype=np.intp, count=lf)
        fa = qa_np[fidx]
        fb = qb_np[fidx]
        plr = self.pl[row]
        l2 = self.l2p[row]
        ha = l2[fa]
        hb = l2[fb]
        pfqr = self.pfq[row]
        pfqr.fill(-1)
        pfqr[fa] = fb
        pfqr[fb] = fa
        pf = plr[n:]
        pf.fill(-1)
        pf[ha] = hb
        pf[hb] = ha
        hmr = self.hm[row]
        hmr.fill(False)
        hmr[ha] = True
        hmr[hb] = True
        self._fa[row] = fa
        self._fb[row] = fb
        self.sum_f[row] = D[ha * n + hb].sum()
        self._lf_f[row] = lf
        if not self._basic:
            self._c1_row[row] = 1.0 / lf
        # Extended-set CSR keyed by logical qubit (counts + offsets
        # rebuilt wholesale each refresh — bincount over n beats the
        # unique/scatter dance at these sizes).
        ecr = self.ecnt[row]
        le = len(ext_nodes)
        self._le[row] = le
        if le:
            eidx = np.fromiter(ext_nodes, dtype=np.intp, count=le)
            ea = qa_np[eidx]
            eb = qb_np[eidx]
            self._ea[row] = ea
            self._eb[row] = eb
            self.sum_e[row] = D[l2[ea] * n + l2[eb]].sum()
            if not self._basic:
                self._c2_row[row] = self._weight / le
            qcat = np.empty(2 * le, dtype=np.intp)
            qcat[:le] = ea
            qcat[le:] = eb
            pcat = np.empty(2 * le, dtype=np.intp)
            pcat[:le] = eb
            pcat[le:] = ea
            order = np.argsort(qcat, kind="stable")
            self._stream[row] = pcat[order]
            counts = np.bincount(qcat, minlength=n)
            ecr[:] = counts
            offs = counts.cumsum()
            offs -= counts
            self.eoff[row][:] = offs
        else:
            self._ea[row] = self._eb[row] = _EMPTY_IDX
            self.sum_e[row] = 0.0
            self._c2_row[row] = 0.0
            self._stream[row] = _EMPTY_IDX
            ecr.fill(0)
        self._streams_dirty = True
        self.sums_dirty[row] = False

    def on_swap(self, row: int, qa: int, qb: int, pa: int, pb: int) -> None:
        """Maintain row mirrors after SWAPping ``qa <-> qb``.

        ``pa``/``pb`` are the pre-swap homes.  Narrow rows only track
        the layout (their front tables are dicts keyed by logical
        qubit, layout-independent); wide rows also fix up the
        front-partner-home table and the home mask — a handful of
        scalar writes, no array traffic.
        """
        n = self.device.n
        plr = self.pl[row]
        l2r = self.l2p[row]
        plr[pa] = qb
        plr[pb] = qa
        l2r[qa] = pb
        l2r[qb] = pa
        if self.narrow[row]:
            return
        pfqr = self.pfq[row]
        x = pfqr[qa]
        y = pfqr[qb]
        plr[n + pb] = l2r[x] if x >= 0 else -1
        plr[n + pa] = l2r[y] if y >= 0 else -1
        if x >= 0:
            plr[n + l2r[x]] = pb
        if y >= 0:
            plr[n + l2r[y]] = pa
        ax = x >= 0
        bx = y >= 0
        if ax != bx:
            hmr = self.hm[row]
            if ax:
                hmr[pa] = False
                hmr[pb] = True
            else:
                hmr[pb] = False
                hmr[pa] = True

    def note_chosen(self, row: int) -> None:
        """Mark a wide row's running sums dirty after an escape-hatch
        SWAP (which bypasses scoring, so no chosen-lane deltas exist).

        Ordinary kernel-scored steps need no notification at all:
        :meth:`_choose` folds the winning lane's front/extended deltas
        into the running sums the moment it picks the lane.
        """
        if not self.narrow[row]:
            self.sums_dirty[row] = True
            self._any_dirty = True

    # ------------------------------------------------------------------
    # Batched kernel
    # ------------------------------------------------------------------

    def _grow(self, cap: int) -> None:
        """Size the expansion scratch to hold ``cap`` stream entries."""
        if cap <= self._cap:
            return
        self._cap = cap
        self._seq = np.arange(cap, dtype=np.intp)
        self._xb1 = np.zeros(cap, dtype=np.intp)
        self._xb2 = np.zeros(cap, dtype=np.intp)
        self._xb3 = np.zeros(cap, dtype=np.intp)
        self._xi = np.zeros(cap, dtype=np.intp)
        self._xf1 = np.zeros(cap)
        self._xg = np.zeros(cap)
        self._xm = np.zeros(cap, dtype=bool)

    def score_rows(
        self,
        active: Sequence[int],
        rngs: Sequence,
        emit_sets: bool = False,
    ) -> dict:
        """Score every candidate SWAP of every active row in one kernel.

        Returns ``{row: (qa, qb, edge_index, winner_pairs)}`` — the
        *chosen* SWAP per row, tie-broken with that row's RNG exactly
        like the scalar loop (``best[0]`` when unique, one ``choice``
        draw otherwise; ``random.Random.choice`` consumes the stream as
        a function of the set size only).  ``winner_pairs`` is the full
        pre-tie-break ``(qa, qb)`` list when ``emit_sets`` (the
        ``on_winner_set`` test seam), else ``None``.

        The kernel is *compacted*: every call gathers only the active
        rows' candidate lanes (edges with a front-layer home endpoint)
        into flat ``(C,)`` working arrays — on real devices candidates
        are a third of the edges, and with only stuck rows active the
        element work tracks exactly what the step needs.
        """
        dev = self.device
        D = dev.dist
        n = dev.n
        E = dev.num_edges
        basic = self._basic
        c1a = self._c1a
        c2a = self._c2a
        ba = self._ba
        A = len(active)
        if self._any_dirty:
            # Escape-hatch swaps invalidated some rows' running sums;
            # recompute from the front tables (rare, python loop fine).
            for t in active:
                if self.sums_dirty[t]:
                    l2 = self.l2p[t]
                    fa = self._fa[t]
                    self.sum_f[t] = D[l2[fa] * n + l2[self._fb[t]]].sum()
                    ea = self._ea[t]
                    if len(ea):
                        self.sum_e[t] = D[l2[ea] * n + l2[self._eb[t]]].sum()
                    self.sums_dirty[t] = False
            self._any_dirty = True in self.sums_dirty
        if A == 1:
            # Solo routing and single-pending ensemble calls are the
            # common tail: a dedicated branch drops all row bookkeeping
            # (per-lane row bases, reduceat segmentation) for ~25% of
            # the dispatch count.
            t = active[0]
            any_ext = self._le[t] > 0
            if basic:
                ba[0] = self.sum_f[t]
            else:
                c1a[0] = self._c1_row[t]
                c2a[0] = self._c2_row[t]
                ba[0] = (
                    self.sum_f[t] / self._lf_f[t]
                    + c2a[0] * self.sum_e[t]
                )
            return {t: self._score_one(t, any_ext, rngs[t], emit_sets)}
        act = np.fromiter(active, dtype=np.intp, count=A)
        sfa = self.sum_f.take(act, out=self._sfa[:A])
        any_ext = bool(self._le.take(act, out=self._lea[:A]).any())
        if basic:
            np.copyto(ba[:A], sfa)
        else:
            # Same float ops as the scalar preamble: sum_f / len_f via
            # true division (not reciprocal multiply), then the
            # precomputed W/len_e coefficient times sum_e.
            self._c1_row.take(act, out=c1a[:A])
            self._c2_row.take(act, out=c2a[:A])
            sea = self.sum_e.take(act, out=self._sea[:A])
            lfa = self._lf_f.take(act, out=self._lfa[:A])
            bav = ba[:A]
            np.divide(sfa, lfa, out=bav)
            np.multiply(c2a[:A], sea, out=sea)
            bav += sea
        actn = act * n
        # Candidate lanes: an edge qualifies iff either endpoint is a
        # front-layer home.  nonzero() is row-major, so lanes arrive
        # grouped by row in ascending edge order — the scalar scorers'
        # candidate order, which keeps tie-break RNG draws aligned.
        gidx = self._actn[:A]
        np.add(dev.ep_s[None, :], actn[:, None], out=gidx)
        hv = self._hv[:A]
        self._hm_flat.take(gidx, out=hv, mode="clip")
        cm = self._cm[:A]
        np.logical_or(hv[:, :E], hv[:, E:], out=cm)
        rwl, ce = cm.nonzero()
        C = len(ce)
        C2 = 2 * C
        C4 = 4 * C
        counts = cm.sum(axis=1)
        offs = counts.cumsum()
        starts_a = offs - counts
        self._lane_ce = ce
        self._lane_c = C
        C10 = 10 * C
        # Fully fused per-edge gather: one take over gcat yields the
        # [occupant_u | occupant_v | partner_home_u | partner_home_v]
        # table indices plus the row_s / row_o / ep_o edge constants.
        ce10 = self._ce10[:C10].reshape(10, C)
        np.add(ce, self._off10, out=ce10)
        bnl = self._bnl[:C]
        actn.take(rwl, out=bnl)
        g10 = self._g10[:C10]
        dev.gcat.take(self._ce10[:C10], out=g10, mode="clip")
        gi4 = g10[:C4]
        sn2 = g10[C4 : C4 + C2]
        on2 = g10[C4 + C2 : C4 + 2 * C2]
        eo2 = g10[C4 + 2 * C2 : C10]
        b2n = self._sbl[:C]
        np.multiply(bnl, 2, out=b2n)
        gi4v = gi4.reshape(4, C)
        gi4v += b2n[None, :]
        q4 = self._q4[:C4]
        self._pl_flat.take(gi4, out=q4, mode="clip")
        qu = q4[:C]
        qv = q4[C:C2]
        f2 = q4[C2:C4]  # front-partner homes, side-stacked [u | v]
        # Front-layer deltas: occupant moves across its edge; gates
        # between the two swapped qubits keep their distance (masked).
        m2 = self._m2[:C2]
        np.greater_equal(f2, 0, out=m2)
        mb2 = self._mb2[:C2]
        np.not_equal(f2, eo2, out=mb2)
        m2 &= mb2
        np.add(on2, f2, out=gi4[:C2])
        np.add(sn2, f2, out=gi4[C2:C4])
        g4 = self._g4[:C4]
        D.take(gi4, out=g4, mode="clip")
        d2 = self._d2[:C2]
        np.subtract(g4[:C2], g4[C2:C4], out=d2)
        d2 *= m2
        df = self._df[:C]
        np.add(d2[:C], d2[C:], out=df)
        # Per-occupant flat keys (decay gather + extended-set CSR).
        ix2 = self._ix2[:C2]
        np.add(q4[:C2].reshape(2, C), bnl[None, :], out=ix2.reshape(2, C))
        # Extended-set deltas via CSR expansion over every candidate
        # lane side at once.
        has_ext = False
        if any_ext:
            cnts2 = self._cnts2[:C2]
            self._ecnt_flat.take(ix2, out=cnts2, mode="clip")
            tot = int(cnts2.sum())
            has_ext = tot > 0
        self._has_ext = has_ext
        if has_ext:
            if self._streams_dirty:
                self._rebuild_streams()
            if 2 * tot > self._cap:
                self._grow(4 * tot)
            soff2 = self._soff2[:C2]
            self._eoff_flat.take(ix2, out=soff2, mode="clip")
            sb_a = self._stream_base_row.take(act)
            sbl = self._sbl[:C]
            sb_a.take(rwl, out=sbl)
            soff2v = soff2.reshape(2, C)
            soff2v += sbl[None, :]
            cs = cnts2.cumsum(out=self._csb2[:C2])
            starts2 = self._starts2[:C2]
            np.subtract(cs, cnts2, out=starts2)
            reps = self._j_ar[:C2].repeat(cnts2)
            b1 = self._xb1[:tot]
            b2 = self._xb2[:tot]
            b3 = self._xb3[:tot]
            # Stream position of every expanded (lane-side, partner)
            # slot: seq - group_start + csr_offset + stream_base.
            starts2.take(reps, out=b1, mode="clip")
            np.subtract(self._seq[:tot], b1, out=b1)
            soff2.take(reps, out=b2, mode="clip")
            b1 += b2
            self._part_cat.take(b1, out=b2, mode="clip")  # partner qubit
            bn2 = starts2  # consumed above; reuse as [bnl | bnl]
            bn2v = bn2.reshape(2, C)
            np.copyto(bn2v[0], bnl)
            np.copyto(bn2v[1], bnl)
            bn2.take(reps, out=b1, mode="clip")
            b1 += b2
            self._l2p_flat.take(b1, out=b3, mode="clip")  # partner home
            # Fused D gather for the moved/unmoved distance pair.
            xi = self._xi[: 2 * tot]
            io = xi[:tot]
            is_ = xi[tot:]
            on2.take(reps, out=io, mode="clip")
            io += b3
            sn2.take(reps, out=is_, mode="clip")
            is_ += b3
            xg = self._xg[: 2 * tot]
            D.take(xi, out=xg, mode="clip")
            f1 = self._xf1[:tot]
            np.subtract(xg[:tot], xg[tot:], out=f1)
            # Gates whose partner rides the *other* side of the SWAP
            # keep their distance — exclude them.
            qo2 = self._qo2[:C2]
            qo2v = qo2.reshape(2, C)
            np.copyto(qo2v[0], qv)
            np.copyto(qo2v[1], qu)
            qo2.take(reps, out=b1, mode="clip")
            m = self._xm[:tot]
            np.not_equal(b2, b1, out=m)
            f1 *= m
            ue_sides = np.bincount(reps, weights=f1, minlength=C2)
            ue = self._ue[:C]
            np.add(ue_sides[:C], ue_sides[C:C2], out=ue)
        # Compose Eq. 2: base + df/|F| + W*ue/|E|, then decay + penalty.
        sc = self._sc[:C]
        fl = self._fl[:C]
        c1a[:A].take(rwl, out=fl)
        np.multiply(df, fl, out=sc)
        if has_ext:
            c2a[:A].take(rwl, out=fl)
            fl *= self._ue[:C]
            sc += fl
        ba[:A].take(rwl, out=fl)
        sc += fl
        if self._uses_decay:
            dv2 = self._dv2[:C2]
            self._dv_flat.take(ix2, out=dv2, mode="clip")
            dm = self._dm[:C]
            np.maximum(dv2[:C], dv2[C:], out=dm)
            sc *= dm
        if self._pen is not None:
            self._pen.take(ce, out=fl, mode="clip")
            sc += fl
        # Winner sets per row segment (epsilon-tied, scalar-rule
        # compatible) via reduceat over the row-grouped lanes.
        mins = np.minimum.reduceat(sc, starts_a)
        mins += _SCORE_EPSILON
        lol = self._lol[:C]
        mins.take(rwl, out=lol)
        within = self._within[:C]
        np.less_equal(sc, lol, out=within)
        wint = self._wint[:C]
        np.copyto(wint, within)
        n1 = np.add.reduceat(wint, starts_a)
        mins += _SCORE_EPSILON
        mins.take(rwl, out=lol)
        w2 = self._w2b[:C]
        np.less_equal(sc, lol, out=w2)
        np.copyto(wint, w2)
        n2 = np.add.reduceat(wint, starts_a)
        # One bulk conversion per array beats per-row numpy-scalar
        # int() casts; winner lanes come from a single flatnonzero
        # instead of per-row argmax/nonzero slices.
        wl = np.flatnonzero(within).tolist()
        starts_l = starts_a.tolist()
        offs_l = offs.tolist()
        n1_l = n1.tolist()
        n2_l = n2.tolist()
        out = {}
        wo = 0
        for a in range(A):
            t = active[a]
            k1 = n1_l[a]
            out[t] = self._choose(
                t,
                starts_l[a],
                offs_l[a],
                k1,
                n2_l[a],
                rngs[t],
                emit_sets,
                wl,
                wo,
            )
            wo += k1
        return out

    def _score_one(self, t, any_ext, rng, emit_sets):
        """Single-row kernel: :meth:`score_rows` minus row bookkeeping.

        Same lane pipeline and identical arithmetic, but row bases are
        python scalars (zero for the solo block), coefficients multiply
        as scalars, and the winner set falls out of ``min`` +
        ``count_nonzero`` instead of segmented reduceat.
        """
        dev = self.device
        D = dev.dist
        n = dev.n
        E = dev.num_edges
        base_n = t * n
        gidx = self._actn[0]
        np.add(dev.ep_s, base_n, out=gidx)
        hv = self._hv[0]
        self._hm_flat.take(gidx, out=hv, mode="clip")
        cm = self._cm[0]
        np.logical_or(hv[:E], hv[E:], out=cm)
        ce = cm.nonzero()[0]
        C = len(ce)
        C2 = 2 * C
        C4 = 4 * C
        C10 = 10 * C
        self._lane_ce = ce
        self._lane_c = C
        ce10 = self._ce10[:C10].reshape(10, C)
        np.add(ce, self._off10, out=ce10)
        g10 = self._g10[:C10]
        dev.gcat.take(self._ce10[:C10], out=g10, mode="clip")
        gi4 = g10[:C4]
        sn2 = g10[C4 : C4 + C2]
        on2 = g10[C4 + C2 : C4 + 2 * C2]
        eo2 = g10[C4 + 2 * C2 : C10]
        if base_n:
            gi4 += 2 * base_n
        q4 = self._q4[:C4]
        self._pl_flat.take(gi4, out=q4, mode="clip")
        qu = q4[:C]
        qv = q4[C:C2]
        f2 = q4[C2:C4]
        m2 = self._m2[:C2]
        np.greater_equal(f2, 0, out=m2)
        mb2 = self._mb2[:C2]
        np.not_equal(f2, eo2, out=mb2)
        m2 &= mb2
        np.add(on2, f2, out=gi4[:C2])
        np.add(sn2, f2, out=gi4[C2:C4])
        g4 = self._g4[:C4]
        D.take(gi4, out=g4, mode="clip")
        d2 = self._d2[:C2]
        np.subtract(g4[:C2], g4[C2:C4], out=d2)
        d2 *= m2
        df = self._df[:C]
        np.add(d2[:C], d2[C:], out=df)
        if base_n:
            ix2 = self._ix2[:C2]
            np.add(q4[:C2], base_n, out=ix2)
        else:
            ix2 = q4[:C2]
        has_ext = False
        if any_ext:
            cnts2 = self._cnts2[:C2]
            self._ecnt_flat.take(ix2, out=cnts2, mode="clip")
            tot = int(cnts2.sum())
            has_ext = tot > 0
        self._has_ext = has_ext
        if has_ext:
            if self._streams_dirty:
                self._rebuild_streams()
            if 2 * tot > self._cap:
                self._grow(4 * tot)
            soff2 = self._soff2[:C2]
            self._eoff_flat.take(ix2, out=soff2, mode="clip")
            sb = int(self._stream_base_row[t])
            if sb:
                soff2 += sb
            cs = cnts2.cumsum(out=self._csb2[:C2])
            starts2 = self._starts2[:C2]
            np.subtract(cs, cnts2, out=starts2)
            reps = self._j_ar[:C2].repeat(cnts2)
            b1 = self._xb1[:tot]
            b2 = self._xb2[:tot]
            b3 = self._xb3[:tot]
            starts2.take(reps, out=b1, mode="clip")
            np.subtract(self._seq[:tot], b1, out=b1)
            soff2.take(reps, out=b2, mode="clip")
            b1 += b2
            self._part_cat.take(b1, out=b2, mode="clip")  # partner qubit
            if base_n:
                np.add(b2, base_n, out=b1)
                self._l2p_flat.take(b1, out=b3, mode="clip")
            else:
                self._l2p_flat.take(b2, out=b3, mode="clip")
            xi = self._xi[: 2 * tot]
            io = xi[:tot]
            is_ = xi[tot:]
            on2.take(reps, out=io, mode="clip")
            io += b3
            sn2.take(reps, out=is_, mode="clip")
            is_ += b3
            xg = self._xg[: 2 * tot]
            D.take(xi, out=xg, mode="clip")
            f1 = self._xf1[:tot]
            np.subtract(xg[:tot], xg[tot:], out=f1)
            qo2 = self._qo2[:C2]
            qo2v = qo2.reshape(2, C)
            np.copyto(qo2v[0], qv)
            np.copyto(qo2v[1], qu)
            qo2.take(reps, out=b1, mode="clip")
            m = self._xm[:tot]
            np.not_equal(b2, b1, out=m)
            f1 *= m
            ue_sides = np.bincount(reps, weights=f1, minlength=C2)
            ue = self._ue[:C]
            np.add(ue_sides[:C], ue_sides[C:C2], out=ue)
        sc = self._sc[:C]
        np.multiply(df, self._c1a[0], out=sc)
        if has_ext:
            fl = self._fl[:C]
            np.multiply(self._ue[:C], self._c2a[0], out=fl)
            sc += fl
        sc += self._ba[0]
        if self._uses_decay:
            dv2 = self._dv2[:C2]
            self._dv_flat.take(ix2, out=dv2, mode="clip")
            dm = self._dm[:C]
            np.maximum(dv2[:C], dv2[C:], out=dm)
            sc *= dm
        if self._pen is not None:
            fl = self._fl[:C]
            self._pen.take(ce, out=fl, mode="clip")
            sc += fl
        lo = sc.min() + _SCORE_EPSILON
        within = self._within[:C]
        np.less_equal(sc, lo, out=within)
        n1 = int(np.count_nonzero(within))
        w2 = self._w2b[:C]
        np.less_equal(sc, lo + _SCORE_EPSILON, out=w2)
        n2 = int(np.count_nonzero(w2))
        wl = np.flatnonzero(within).tolist() if n1 == n2 else None
        return self._choose(t, 0, C, n1, n2, rng, emit_sets, wl, 0)

    def _rebuild_streams(self) -> None:
        """Re-concatenate per-trial partner streams after a front change."""
        streams = self._stream
        if self.rows == 1:
            self._part_cat = streams[0]
            # stream_base_row stays all-zero for the solo block.
        else:
            self._part_cat = np.concatenate(streams)
            base = 0
            sb = self._stream_base_row
            for i, s in enumerate(streams):
                sb[i] = base
                base += len(s)
        self._streams_dirty = False

    def _choose(self, t, s, e, n1, n2, rng, emit_sets, wl, wo):
        """Row ``t``'s tie-broken ``(qa, qb, eidx, winner_pairs)`` from
        its lane segment ``[s, e)`` of the last kernel call.

        ``wl``/``wo`` hand over the call-wide winner-lane list (global
        lane indices from one ``flatnonzero``) and this row's offset
        into it — its ``n1`` winners are ``wl[wo:wo + n1]``.

        The scalar loop's running-best rule equals ``{i : s_i <= min +
        eps}`` unless some score lies in ``(min+eps, min+2eps]`` (only
        then can a collected near-tie be evicted later); that rare
        boundary case falls back to an exact sequential replay.  Ties
        draw one ``rng.choice`` over an equal-length sequence — the
        same stream consumption as the scalar loop's
        ``rng.choice(best)``.

        Picking the lane also folds its front/extended deltas into the
        row's running sums right here — the lane buffers are
        overwritten next call, and by then the SWAP has been applied.
        """
        C = self._lane_c
        q4 = self._q4
        if n1 != n2:
            best_score = float("inf")
            best: List[int] = []
            for i, score in enumerate(self._sc[s:e].tolist()):
                if score < best_score - _SCORE_EPSILON:
                    best_score = score
                    best = [i]
                elif score <= best_score + _SCORE_EPSILON:
                    best.append(i)
            lane = s + (best[0] if len(best) == 1 else rng.choice(best))
            pairs = (
                [(int(q4[s + k]), int(q4[C + s + k])) for k in best]
                if emit_sets
                else None
            )
        elif n1 == 1:
            lane = wl[wo]
            pairs = (
                [(int(q4[lane]), int(q4[C + lane]))] if emit_sets else None
            )
        else:
            best = wl[wo : wo + n1]
            lane = rng.choice(best)
            pairs = (
                [(int(q4[k]), int(q4[C + k])) for k in best]
                if emit_sets
                else None
            )
        self.sum_f[t] += self._df[lane]
        if self._has_ext:
            self.sum_e[t] += self._ue[lane]
        return (
            int(q4[lane]),
            int(q4[C + lane]),
            int(self._lane_ce[lane]),
            pairs,
        )

    # ------------------------------------------------------------------
    # Narrow-front scalar scoring (bit-compatible with the fast loop)
    # ------------------------------------------------------------------

    def score_scalar(
        self,
        row: int,
        l2p: Sequence[int],
        p2l: Sequence[int],
        decay_values,
        uses_decay: bool,
    ) -> List[Tuple[int, int, None]]:
        """Scalar delta scoring for a narrow front (see class docstring).

        Mirrors the router's inlined fast loop exactly — same candidate
        order, same float operations — so narrow and wide fronts are
        scored interchangeably.  Candidates are regenerated per step
        (the front is tiny); the winner triples carry ``eidx=None``
        since the kernel's delta buffers were not involved.
        """
        buf = self.buf
        n = self.device.n
        neighbors = self.neighbors
        config = self.config
        fpairs = self._front_pairs[row]
        epairs = self._ext_pairs[row]
        pfd = self._pfd[row]
        ped = self._ped[row]
        homes = set()
        for a, b in fpairs:
            homes.add(l2p[a])
            homes.add(l2p[b])
        cand = sorted(
            {
                (p, nb) if p < nb else (nb, p)
                for p in homes
                for nb in neighbors[p]
            }
        )
        sum_f = 0.0
        for a, b in fpairs:
            sum_f += buf[l2p[a] * n + l2p[b]]
        sum_e = 0.0
        for a, b in epairs:
            sum_e += buf[l2p[a] * n + l2p[b]]
        len_f = len(fpairs)
        len_e = len(epairs)
        weight = self._weight
        basic = self._basic
        penalty = self._penalty
        ext_const = weight * (sum_e + 0.0) / len_e if len_e else 0.0
        if uses_decay:
            dvl = decay_values.tolist()
        best_score = float("inf")
        best: List[Tuple[int, int, None]] = []
        for pa, pb in cand:
            qa = p2l[pa]
            qb = p2l[pb]
            row_a = pa * n
            row_b = pb * n
            delta = 0.0
            other = pfd.get(qa, -1)
            if other >= 0 and other != qb:
                po = l2p[other]
                delta += buf[row_b + po] - buf[row_a + po]
            other = pfd.get(qb, -1)
            if other >= 0 and other != qa:
                po = l2p[other]
                delta += buf[row_a + po] - buf[row_b + po]
            if basic:
                score = sum_f + delta
            else:
                score = (sum_f + delta) / len_f
                if len_e:
                    pe_a = ped.get(qa, _NO_PARTNERS)
                    pe_b = ped.get(qb, _NO_PARTNERS)
                    if pe_a or pe_b:
                        delta = 0.0
                        for other in pe_a:
                            if other != qb:
                                po = l2p[other]
                                delta += buf[row_b + po] - buf[row_a + po]
                        for other in pe_b:
                            if other != qa:
                                po = l2p[other]
                                delta += buf[row_a + po] - buf[row_b + po]
                        score += weight * (sum_e + delta) / len_e
                    else:
                        score += ext_const
            if uses_decay:
                da = dvl[qa]
                db = dvl[qb]
                score *= da if da >= db else db
            if penalty:
                score += penalty * (buf[row_a + pb] - 1.0)
            if score < best_score - _SCORE_EPSILON:
                best_score = score
                best = [(qa, qb, None)]
            elif score <= best_score + _SCORE_EPSILON:
                best.append((qa, qb, None))
        return best
