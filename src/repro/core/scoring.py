"""Flat-array router state and O(deg) delta scoring for SABRE's hot loop.

The reference scorer (:func:`repro.core.heuristic.score_layout`) rescores
the *entire* front layer ``F`` and extended set ``E`` for every candidate
SWAP, making each search step ``O(|candidates| * (|F| + |E|))`` over a
list-of-lists distance matrix.  A SWAP only moves two qubits, though, so
every Eq. 2 term not touching those two qubits is unchanged.  This module
exploits that:

- :class:`FlatDistance` flattens ``D[][]`` into one contiguous 1-D
  ``array('d')`` buffer (``D[a][b] == buf[a * n + b]``), removing a level
  of pointer chasing from every distance lookup and making the matrix
  cheap to cache, copy, and ship to worker processes.
- :class:`RouterState` holds the per-traversal mutable state: the front
  and extended gate pairs, a per-qubit -> gate-term index, per-step base
  sums for ``F`` and ``E``, and the candidate SWAP edge set (maintained
  incrementally as the layout changes).  A candidate SWAP on physical
  edge ``(pa, pb)`` is then scored in ``O(deg_F + deg_E)`` — the handful
  of terms whose qubits actually move — instead of ``O(|F| + |E|)``.

Exactness: a gate *between* the two swapped qubits keeps its distance
(``D`` is symmetric for every matrix this project produces), so its term
is skipped entirely.  All remaining terms are adjusted by the difference
of two matrix entries.  Sums therefore agree with the reference scorer
up to float-addition ordering, which the differential suite
(``tests/core/test_differential.py``) pins down to identical winner sets
and identical routed circuits.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, insort
from itertools import chain
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.heuristic import HeuristicConfig
from repro.exceptions import MappingError

#: Shared empty tuple so ``partners.get(q, _NO_PARTNERS)`` never allocates.
_NO_PARTNERS: Tuple[int, ...] = ()


class FlatDistance:
    """A distance matrix flattened into a single 1-D ``array('d')``.

    ``buf[a * n + b]`` is ``D[a][b]``.  Instances are picklable (workers
    in the trial/batch engine receive them directly) and cheap to copy.

    Attributes:
        n: matrix dimension (number of physical qubits).
        buf: the flat row-major buffer, length ``n * n``.
        symmetric: True when ``D[a][b] == D[b][a]`` everywhere.  Every
            matrix built by :mod:`repro.hardware.distance` is symmetric;
            the flag exists so the fast scorer can refuse (fall back to
            the reference scorer) on exotic asymmetric inputs.
    """

    __slots__ = ("n", "buf", "symmetric")

    def __init__(self, n: int, buf: array, symmetric: Optional[bool] = None):
        if len(buf) != n * n:
            raise MappingError(
                f"flat distance buffer has {len(buf)} entries, expected {n * n}"
            )
        self.n = n
        self.buf = buf
        if symmetric is None:
            symmetric = all(
                buf[i * n + j] == buf[j * n + i]
                for i in range(n)
                for j in range(i + 1, n)
            )
        self.symmetric = symmetric

    @classmethod
    def from_matrix(cls, rows: Sequence[Sequence[float]]) -> "FlatDistance":
        """Flatten a nested ``N x N`` matrix (validates row lengths)."""
        if isinstance(rows, FlatDistance):
            return rows
        n = len(rows)
        if any(len(row) != n for row in rows):
            raise MappingError("distance matrix must be square")
        return cls(n, array("d", chain.from_iterable(rows)))

    def row(self, i: int) -> List[float]:
        """Row ``i`` as a fresh list (rarely needed; not a hot path)."""
        return list(self.buf[i * self.n : (i + 1) * self.n])

    def to_matrix(self) -> List[List[float]]:
        """Rebuild the nested list-of-lists view (fresh, mutable)."""
        return [self.row(i) for i in range(self.n)]

    def copy(self) -> "FlatDistance":
        return FlatDistance(self.n, array("d", self.buf), self.symmetric)

    def __getstate__(self):
        return (self.n, self.buf.tobytes(), self.symmetric)

    def __setstate__(self, state):
        n, raw, symmetric = state
        buf = array("d")
        buf.frombytes(raw)
        self.n = n
        self.buf = buf
        self.symmetric = symmetric

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlatDistance):
            return NotImplemented
        return self.n == other.n and self.buf == other.buf

    def __repr__(self) -> str:
        return f"FlatDistance(n={self.n}, symmetric={self.symmetric})"


class RouterState:
    """Per-traversal routing state: term indices, base sums, candidates.

    One instance per :meth:`SabreRouter.run` call (never shared across
    concurrent runs).  The router drives it through four events:

    - :meth:`set_front` whenever a gate executed (``F``/``E`` changed);
    - :meth:`begin_step` before scoring a step's candidates;
    - :meth:`swap_score` once per candidate SWAP;
    - :meth:`on_swap_applied` after a SWAP mutates the layout (keeps
      the candidate edge set in sync without a from-scratch rebuild).
    """

    __slots__ = (
        "n",
        "buf",
        "neighbors",
        "config",
        "front_pairs",
        "ext_pairs",
        "partner_f",
        "partners_e",
        "front_qubits",
        "front_homes",
        "cand_set",
        "cand_list",
        "sum_f",
        "sum_e",
        "_weight",
        "_prev_f",
        "_prev_e",
    )

    def __init__(
        self,
        flat: FlatDistance,
        neighbors: Sequence[Sequence[int]],
        config: HeuristicConfig,
        buf: Optional[List[float]] = None,
    ) -> None:
        self.n = flat.n
        # A plain list of (pre-boxed) floats: array('d') would box a
        # fresh float object on every read, and this buffer is read a
        # few hundred thousand times per deep traversal.  Callers that
        # route many times against one device pass the listified buffer
        # in (it is read-only here), hoisting the O(N^2) conversion out
        # of the per-run path.
        self.buf: List[float] = flat.buf.tolist() if buf is None else buf
        self.neighbors = neighbors
        self.config = config
        self._weight = config.extended_set_weight
        self.front_pairs: List[Tuple[int, int]] = []
        self.ext_pairs: List[Tuple[int, int]] = []
        # Per-qubit gate-term indices as flat lists (index = logical
        # qubit): list indexing beats dict lookups in the candidate
        # loop.  Front gates are vertex-disjoint (two ready gates can
        # never share a qubit), so each qubit has at most ONE front
        # partner — a scalar with -1 for "none", no inner loop needed.
        # Extended-set gates can repeat qubits, so those stay lists
        # (untouched qubits share one immutable empty tuple).
        self.partner_f: List[int] = [-1] * self.n
        self.partners_e: List[Sequence[int]] = [_NO_PARTNERS] * self.n
        #: Qubits whose table entries the *current* front installed —
        #: what the next set_front must undo (persistent-table scheme).
        self._prev_f: List[int] = []
        self._prev_e: List[int] = []
        self.front_qubits: Set[int] = set()
        self.front_homes: Set[int] = set()
        self.cand_set: Set[Tuple[int, int]] = set()
        self.cand_list: List[Tuple[int, int]] = []
        self.sum_f = 0.0
        self.sum_e = 0.0

    # ------------------------------------------------------------------
    # Front-layer events
    # ------------------------------------------------------------------

    def set_front(
        self,
        front_pairs: Sequence[Tuple[int, int]],
        ext_pairs: Sequence[Tuple[int, int]],
        l2p: Sequence[int],
    ) -> None:
        """Rebuild pair lists, per-qubit term indices, and candidates.

        Takes the front layer ``F`` and extended set ``E`` as plain
        logical-qubit pairs (a gate's ``.qubits`` tuple, or the shared
        ``pairs[i]`` tuples of a :class:`~repro.circuits.flatdag.FlatDag`)
        so gate objects never enter the scoring state.  Called only
        when a gate executed (the front layer changed) — consecutive
        SWAP selections reuse everything built here.

        The per-qubit tables are *persistent*: entries touched by the
        previous front are undone (``_prev_f``/``_prev_e``) instead of
        reallocating two n-sized tables per refresh — a refresh happens
        for every executed gate, and the tables only ever have
        ``O(|F| + |E|)`` live entries.
        """
        # Undo the previous front/extended entries, then install the
        # new ones.  Net cost per refresh: O(|F_prev| + |F_new|).
        partner_f = self.partner_f
        for q in self._prev_f:
            partner_f[q] = -1
        partners_e = self.partners_e
        for q in self._prev_e:
            partners_e[q] = _NO_PARTNERS
        self.front_pairs = front_pairs = list(front_pairs)
        self.ext_pairs = ext_pairs = list(ext_pairs)
        front_qubits: Set[int] = set()
        prev_f: List[int] = []
        for a, b in front_pairs:
            if partner_f[a] != -1 or partner_f[b] != -1:
                # Leave the tables coherent before failing.
                for q in prev_f:
                    partner_f[q] = -1
                self._prev_f = []
                self._prev_e = []
                raise MappingError(
                    "front layer gates must be vertex-disjoint; got a qubit "
                    "in two ready gates"
                )
            partner_f[a] = b
            partner_f[b] = a
            prev_f.append(a)
            prev_f.append(b)
            front_qubits.add(a)
            front_qubits.add(b)
        self._prev_f = prev_f
        prev_e: List[int] = []
        for a, b in ext_pairs:
            pe = partners_e[a]
            if pe is _NO_PARTNERS:
                partners_e[a] = [b]
                prev_e.append(a)
            else:
                pe.append(b)  # type: ignore[union-attr]
            pe = partners_e[b]
            if pe is _NO_PARTNERS:
                partners_e[b] = [a]
                prev_e.append(b)
            else:
                pe.append(a)  # type: ignore[union-attr]
        self._prev_e = prev_e
        old_qubits = self.front_qubits
        self.front_qubits = front_qubits
        # Candidate maintenance by front diff: qubits that left the
        # front take their homes' edges out (unless another front home
        # keeps an edge alive), qubits that entered bring theirs in.
        # A refresh typically swaps a handful of qubits while the
        # from-scratch rebuild walks every front home; the rebuild
        # stays available as the oracle this must always agree with
        # (distinct logical qubits occupy distinct homes, so removed
        # and added home sets never overlap).
        homes = self.front_homes
        cand = self.cand_set
        cand_list = self.cand_list
        neighbors = self.neighbors
        removed = old_qubits - front_qubits
        added = front_qubits - old_qubits
        removed_homes = [l2p[q] for q in removed]
        added_homes = [l2p[q] for q in added]
        for h in removed_homes:
            homes.discard(h)
        for h in added_homes:
            homes.add(h)
        for h in removed_homes:
            for nb in neighbors[h]:
                if nb not in homes:
                    edge = (h, nb) if h < nb else (nb, h)
                    if edge in cand:
                        cand.discard(edge)
                        del cand_list[bisect_left(cand_list, edge)]
        for h in added_homes:
            for nb in neighbors[h]:
                edge = (h, nb) if h < nb else (nb, h)
                if edge not in cand:
                    cand.add(edge)
                    insort(cand_list, edge)

    def rebuild_candidates(self, l2p: Sequence[int]) -> None:
        """From-scratch candidate edge set: edges touching a front home.

        This is the §IV-C1 search-space reduction; incremental updates
        (:meth:`on_swap_applied`) must always agree with this rebuild —
        the invariant the candidate-cache tests pin down.
        """
        homes = {l2p[q] for q in self.front_qubits}
        self.front_homes = homes
        cand: Set[Tuple[int, int]] = set()
        neighbors = self.neighbors
        for p in homes:
            for nb in neighbors[p]:
                cand.add((p, nb) if p < nb else (nb, p))
        self.cand_set = cand
        self.cand_list = sorted(cand)

    def candidates(self) -> List[Tuple[int, int]]:
        """Sorted candidate edges — deterministic iteration order, so
        tie-break sets (and hence ``rng.choice``) match the reference
        from-scratch path exactly.  Maintained incrementally (a sorted
        list kept in lock-step with :attr:`cand_set`), so no per-step
        sort.  Callers iterate only; they must not mutate the list."""
        return self.cand_list

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def begin_step(self, l2p: Sequence[int]) -> None:
        """Recompute the step's base sums over ``F`` and ``E``.

        Once per SWAP selection (``O(|F| + |E|)``), in the same gate
        order as the reference scorer so float rounding tracks it as
        closely as possible.  Recomputing per step (rather than carrying
        sums across steps) keeps errors from accumulating over long
        SWAP chains.
        """
        buf = self.buf
        n = self.n
        total = 0.0
        for a, b in self.front_pairs:
            total += buf[l2p[a] * n + l2p[b]]
        self.sum_f = total
        total = 0.0
        for a, b in self.ext_pairs:
            total += buf[l2p[a] * n + l2p[b]]
        self.sum_e = total

    def swap_score(
        self, qa: int, qb: int, pa: int, pb: int, l2p: Sequence[int]
    ) -> float:
        """Distance part of the heuristic after SWAPping ``qa <-> qb``.

        ``pa``/``pb`` are the current homes of ``qa``/``qb``.  Only the
        terms whose gates touch the swapped qubits are adjusted; gates
        between ``qa`` and ``qb`` themselves keep their (symmetric)
        distance and are skipped.  Decay and the SWAP-cost penalty are
        applied by the router — they depend on the SWAP, not the layout.
        """
        buf = self.buf
        n = self.n
        row_a = pa * n
        row_b = pb * n
        delta_f = 0.0
        other = self.partner_f[qa]
        if other >= 0 and other != qb:
            po = l2p[other]
            delta_f += buf[row_b + po] - buf[row_a + po]
        other = self.partner_f[qb]
        if other >= 0 and other != qa:
            po = l2p[other]
            delta_f += buf[row_a + po] - buf[row_b + po]
        if self.config.mode == "basic":
            return self.sum_f + delta_f
        score = (self.sum_f + delta_f) / len(self.front_pairs)
        if self.ext_pairs:
            delta_e = 0.0
            for other in self.partners_e[qa]:
                if other != qb:
                    po = l2p[other]
                    delta_e += buf[row_b + po] - buf[row_a + po]
            for other in self.partners_e[qb]:
                if other != qa:
                    po = l2p[other]
                    delta_e += buf[row_a + po] - buf[row_b + po]
            score += self._weight * (self.sum_e + delta_e) / len(self.ext_pairs)
        return score

    # ------------------------------------------------------------------
    # Layout events
    # ------------------------------------------------------------------

    def on_swap_applied(self, qa: int, qb: int, pa: int, pb: int) -> None:
        """Incrementally maintain the candidate set after a SWAP.

        ``pa``/``pb`` are the homes of ``qa``/``qb`` *before* the swap.
        At most one front-layer home moves (front qubits occupy distinct
        homes), so the update touches only the two endpoints' edges —
        ``O(deg)`` instead of rebuilding from every front qubit.
        """
        a_front = qa in self.front_qubits
        b_front = qb in self.front_qubits
        if a_front == b_front:
            # Both in the front layer: their homes trade places and the
            # union of incident edges is unchanged.  Neither in the
            # front layer: no front home moved.
            return
        moved_from, moved_to = (pa, pb) if a_front else (pb, pa)
        homes = self.front_homes
        homes.discard(moved_from)
        homes.add(moved_to)
        cand = self.cand_set
        cand_list = self.cand_list
        for nb in self.neighbors[moved_from]:
            if nb not in homes:
                edge = (moved_from, nb) if moved_from < nb else (nb, moved_from)
                if edge in cand:
                    cand.discard(edge)
                    del cand_list[bisect_left(cand_list, edge)]
        for nb in self.neighbors[moved_to]:
            edge = (moved_to, nb) if moved_to < nb else (nb, moved_to)
            if edge not in cand:
                cand.add(edge)
                insort(cand_list, edge)
