"""Compilation result object with the paper's metrics attached."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.depth import circuit_depth
from repro.core.layout import Layout
from repro.core.router import RoutingResult


@dataclass
class MappingResult:
    """Everything :func:`repro.core.compiler.compile_circuit` produces.

    The fields mirror Table II's columns: ``original_gates`` is
    ``g_ori``, ``added_gates`` is ``g_add``/``g_op``, ``total_gates`` is
    ``g_tot``, plus depth before/after and wall-clock runtime.

    Attributes:
        name: circuit name (benchmark id).
        device_name: coupling-graph name.
        original_circuit: the (basis-decomposed) input circuit.
        routing: raw :class:`RoutingResult` of the winning traversal.
        initial_layout: chosen initial mapping (after reverse traversal).
        final_layout: mapping when the routed circuit finishes.
        num_swaps: SWAPs inserted.
        runtime_seconds: wall-clock time of the whole search.
        first_pass_swaps: best single-traversal swap count (``g_la``),
            ``None`` when a fixed initial layout was supplied.
        trial_swaps: final swap count of each random restart.
        num_trials / num_traversals: search configuration actually used.
        final_circuit: post-pass output when a pipeline rewrote the
            routed circuit after routing (direction legalisation);
            ``None`` means derive the output from ``routing``.
        properties: the pipeline run's property set — per-pass timings,
            verification verdicts, rewrite statistics, objective
            overrides (see :class:`repro.pipeline.context.PropertySet`).
    """

    name: str
    device_name: str
    original_circuit: QuantumCircuit
    routing: RoutingResult
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int
    runtime_seconds: float
    first_pass_swaps: Optional[int] = None
    trial_swaps: List[int] = field(default_factory=list)
    num_trials: int = 1
    num_traversals: int = 1
    final_circuit: Optional[QuantumCircuit] = None
    properties: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------

    @property
    def original_gates(self) -> int:
        """``g_ori``: unitary gate count of the input circuit."""
        return self.original_circuit.count_gates()

    @property
    def added_gates(self) -> int:
        """``g_add``: additional gates = 3 CNOTs per inserted SWAP."""
        return 3 * self.num_swaps

    @property
    def total_gates(self) -> int:
        """``g_tot = g_ori + g_add``."""
        return self.original_gates + self.added_gates

    @property
    def original_depth(self) -> int:
        return circuit_depth(self.original_circuit)

    @property
    def routed_depth(self) -> int:
        """Depth of the output with SWAPs decomposed into 3 CNOTs."""
        return circuit_depth(self.physical_circuit(decompose_swaps=True))

    @property
    def routed_depth_swaps_atomic(self) -> int:
        """Depth counting each SWAP as one time step (native-SWAP devices)."""
        return circuit_depth(self.routing.circuit)

    def physical_circuit(self, decompose_swaps: bool = True) -> QuantumCircuit:
        """The hardware-compliant output circuit.

        When a post-routing pipeline pass produced a rewritten output
        (``final_circuit``), that circuit is returned as-is — it is
        already fully expanded (no ``swap`` gates remain to decompose).
        """
        if self.final_circuit is not None:
            return self.final_circuit
        return self.routing.physical_circuit(decompose_swaps=decompose_swaps)

    def gate_overhead_ratio(self) -> float:
        """``g_add / g_ori`` — relative overhead of routing."""
        if self.original_gates == 0:
            return 0.0
        return self.added_gates / self.original_gates

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table/CSV reporting."""
        return {
            "name": self.name,
            "device": self.device_name,
            "n": len(self.original_circuit.used_qubits()),
            "g_ori": self.original_gates,
            "g_add": self.added_gates,
            "g_tot": self.total_gates,
            "swaps": self.num_swaps,
            "d_ori": self.original_depth,
            "d_out": self.routed_depth,
            "t_sec": round(self.runtime_seconds, 4),
        }

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"circuit      : {self.name}",
            f"device       : {self.device_name}",
            f"gates        : {self.original_gates} -> {self.total_gates} "
            f"(+{self.added_gates} from {self.num_swaps} SWAPs)",
            f"depth        : {self.original_depth} -> {self.routed_depth}",
            f"runtime      : {self.runtime_seconds:.4f} s",
            f"search       : {self.num_trials} trial(s) x "
            f"{self.num_traversals} traversal(s)",
        ]
        if self.first_pass_swaps is not None:
            lines.append(
                f"g_la (1-pass): {3 * self.first_pass_swaps} added gates"
            )
        return "\n".join(lines)
