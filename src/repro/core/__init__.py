"""SABRE: SWAP-based BidiREctional heuristic search (the paper's core).

Public pieces:

- :class:`~repro.core.layout.Layout` — the mapping ``pi`` between logical
  and physical qubits (paper Table I).
- :class:`~repro.core.heuristic.HeuristicConfig` and the cost functions
  of §IV-D (Equations 1 and 2: nearest-neighbour, look-ahead, decay).
- :class:`~repro.core.router.SabreRouter` — Algorithm 1, the one-pass
  SWAP-based heuristic search.
- :class:`~repro.core.bidirectional.SabreLayout` — the reverse-traversal
  initial mapping search (§IV-C2) with random restarts.
- :func:`~repro.core.compiler.compile_circuit` — the one-call public API
  tying everything together.
"""

from repro.core.layout import Layout
from repro.core.heuristic import HeuristicConfig, DecayTracker, resolve_scorer
from repro.core.scoring import FlatDistance, RouterState
from repro.core.router import SabreRouter, RoutingResult
from repro.core.bidirectional import SabreLayout
from repro.core.legacy import LegacyDagRouter, LegacySabreLayout
from repro.core.compiler import compile_circuit
from repro.core.result import MappingResult

__all__ = [
    "LegacyDagRouter",
    "LegacySabreLayout",
    "Layout",
    "HeuristicConfig",
    "DecayTracker",
    "resolve_scorer",
    "FlatDistance",
    "RouterState",
    "SabreRouter",
    "RoutingResult",
    "SabreLayout",
    "compile_circuit",
    "MappingResult",
]
