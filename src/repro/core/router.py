"""SABRE's SWAP-based heuristic search — Algorithm 1 of the paper.

One traversal: scan the dependency DAG from the initial front layer to
the end, executing every hardware-compatible gate immediately and
inserting the best-scoring SWAP whenever the front layer is stuck.

The search-space reduction that gives SABRE its exponential speedup
(§IV-C1) lives in :meth:`SabreRouter._swap_candidates`: only SWAPs on
physical edges touching a front-layer qubit are considered ("only the
SWAPs that associate with at least one qubit in the front layer are the
candidate SWAPs"), i.e. ``O(N)`` candidates instead of the ``O(exp(N))``
mapping combinations of the A* baseline.

Candidate scoring has three interchangeable implementations (selected
via :attr:`HeuristicConfig.scorer` or the ``REPRO_SCORER`` environment
variable, default ``vector``):

- ``vector`` — batched numpy kernel (:class:`~repro.core.scoring.
  VectorBlock`): every step scores *all* device edges with a fixed
  sequence of array ops over device-constant index tables, masking
  non-candidates to ``+inf``.  The routing loop runs as a generator
  (:meth:`SabreRouter._route_vector`) that yields at each scoring
  step; solo runs drive it with a one-row block, and the trial
  ensemble (:mod:`repro.engine.ensemble`) drives K generators in
  lockstep against one K-row block so a whole fleet of trials shares
  each kernel call.  Narrow fronts are scored by a scalar delta loop
  inside the generator (numpy dispatch would dominate), so small
  circuits never pay array overhead.
- ``fast`` — the scalar flat-array delta scorer of
  :mod:`repro.core.scoring`: per-step base sums over ``F``/``E`` plus
  an ``O(deg)`` adjustment of only the terms touching the two swapped
  qubits.
- ``reference`` — the paper-literal path: temporarily apply the SWAP and
  recompute the full Eq. 2 sum (:func:`repro.core.heuristic.score_layout`).

All three walk the same sorted candidate order and therefore produce
identical winner sets, identical tie-breaks, and identical routed
circuits for identical seeds — the differential test suite enforces
this.

The traversal itself runs over the compile-once flat IR of
:mod:`repro.circuits.flatdag`: :meth:`SabreRouter.run` accepts either a
:class:`~repro.circuits.circuit.QuantumCircuit` (lowered on the spot —
the thin-wrapper entry point) or a prebuilt shared
:class:`~repro.circuits.flatdag.FlatDag`, plus an optional reusable
:class:`~repro.circuits.flatdag.FrontierState` so repeated traversals
of one circuit (the bidirectional search, best-of-K trials) never
re-lower or reallocate per pass.  The pre-PR per-run object-DAG loop is
preserved verbatim in :mod:`repro.core.legacy` as the differential and
perf baseline.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.depth import _DIRECTIVE_NAMES as _DEPTH_SKIP
from repro.circuits.flatdag import FlatDag, FrontierState
from repro.circuits.gates import Gate, remap_gate, swap_gate
from repro.core.heuristic import (
    DecayArray,
    DecayTracker,
    HeuristicConfig,
    resolve_scorer,
    score_layout,
)
from repro.core.layout import Layout
from repro.core.scoring import (
    SCORE_EPSILON,
    FlatDistance,
    RouterState,
    VectorBlock,
    VectorDevice,
)
from repro.exceptions import MappingError
from repro.telemetry.profile import active_router_profiler
from repro.hardware.coupling import CouplingGraph
from repro.hardware.distance import bfs_flat_distance

#: Scores within this tolerance are considered tied (random tie-break).
_SCORE_EPSILON = SCORE_EPSILON

#: Shared row tuple for the solo vector driver (avoids a per-step alloc).
_SOLO_ROWS = (0,)


@dataclass
class RoutingResult:
    """Output of one routing traversal.

    Attributes:
        circuit: the hardware-compliant circuit on *physical* wires.
            Inserted SWAPs appear as ``swap`` gates (decompose with
            :meth:`physical_circuit` for the 3-CNOT expansion).
        initial_layout: the mapping the traversal started from.
        final_layout: the mapping after all gates executed — the input
            to the next traversal in the bidirectional scheme.
        num_swaps: SWAPs inserted by this traversal.
        swap_positions: indices into ``circuit`` of the inserted SWAPs.
        num_forced_escapes: times the livelock escape hatch fired
            (0 in normal operation; see ``SabreRouter.stall_limit``).
    """

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int
    swap_positions: List[int] = field(default_factory=list)
    num_forced_escapes: int = 0
    #: Memoised 3-CNOT expansion (built on first physical_circuit call).
    _decomposed: Optional[QuantumCircuit] = field(
        default=None, repr=False, compare=False
    )

    @property
    def added_gates(self) -> int:
        """Additional gate count under the 3-CNOT SWAP decomposition —
        the paper's ``g_add`` metric."""
        return 3 * self.num_swaps

    def physical_circuit(self, decompose_swaps: bool = True) -> QuantumCircuit:
        """The routed circuit, optionally with SWAPs expanded to CNOTs.

        The decomposed form is memoised — metrics, verifiers, and report
        code all call this repeatedly, and re-walking the whole circuit
        per call was pure waste.  Callers must treat the returned
        circuit as read-only (every in-repo consumer does).
        """
        if not decompose_swaps:
            return self.circuit
        if self._decomposed is None:
            from repro.circuits.decompositions import swap_decomposition

            out = QuantumCircuit(
                self.circuit.num_qubits, self.circuit.name, self.circuit.num_clbits
            )
            swap_set = set(self.swap_positions)
            for index, gate in enumerate(self.circuit):
                if index in swap_set:
                    out.extend(swap_decomposition(*gate.qubits))
                else:
                    out.append(gate)
            self._decomposed = out
        return self._decomposed

    def __getstate__(self):
        # Drop the memo from pickles: process-pool trials ship results
        # back to the parent, and the decomposed copy would roughly
        # double the payload for a cache that rebuilds on demand.
        state = self.__dict__.copy()
        state["_decomposed"] = None
        return state


@dataclass
class SearchTrace:
    """Record of one no-emission routing traversal (search mode).

    The layout-search phases of the trial ensemble never consume the
    routed circuits of losing traversals — only each trial's winning
    forward traversal is turned into a real circuit, by replaying its
    SWAP decisions (:meth:`SabreRouter._replay`).  A trace therefore
    carries just the selection key (``num_swaps``, ``depth``), the SWAP
    record that makes the traversal mechanically reproducible, and the
    layout endpoints.

    ``depth`` equals ``circuit_depth(replayed.circuit)`` by
    construction: the search maintains the same per-wire ASAP counters
    over the gates it *would* have emitted.  ``escapes`` marks spans of
    ``swaps`` applied by the livelock hatch back-to-back (the replay
    must not run its ready scan inside such a span, mirroring the
    search loop's behaviour).
    """

    initial_layout: Layout
    final_layout: Layout
    num_swaps: int
    depth: int
    swaps: List[Tuple[int, int]]
    escapes: List[Tuple[int, int]] = field(default_factory=list)
    num_forced_escapes: int = 0


class SabreRouter:
    """One-traversal SWAP-based heuristic search (Algorithm 1).

    Args:
        coupling: device coupling graph (must be connected).
        config: heuristic configuration; defaults to the paper's.
        seed: RNG seed for tie-breaking among equal-score SWAPs.
        distance: precomputed distance matrix — either a nested
            ``N x N`` sequence or a :class:`~repro.core.scoring.FlatDistance`
            (computed when omitted; pass it in when routing many
            circuits on one device).  When omitted it is computed with
            the BFS APSP (``O(N·E)``), which agrees with the paper's
            Floyd-Warshall on every unit-weight graph (a test
            invariant) and is much cheaper on sparse devices.
        stall_limit: consecutive SWAP insertions without executing any
            gate before the escape hatch force-routes the closest
            front-layer gate along a shortest path.  The paper does not
            discuss livelock; with decay enabled it is essentially
            unreachable, but the hatch makes termination a theorem
            rather than an observation.  ``None`` derives a generous
            default from the device diameter.
    """

    def __init__(
        self,
        coupling: CouplingGraph,
        config: Optional[HeuristicConfig] = None,
        seed: Optional[int] = None,
        distance: Optional[
            Union[FlatDistance, Sequence[Sequence[float]]]
        ] = None,
        stall_limit: Optional[int] = None,
    ) -> None:
        coupling.require_connected()
        self.coupling = coupling
        self.config = config or HeuristicConfig()
        self.seed = seed
        if distance is None:
            # Built directly in flat row-major form — no nested
            # list-of-lists detour for the default path.
            distance = bfs_flat_distance(coupling)
        self.flat_dist = FlatDistance.from_matrix(distance)
        if self.flat_dist.n != coupling.num_qubits:
            raise MappingError(
                f"distance matrix is {self.flat_dist.n}x{self.flat_dist.n}, "
                f"device has {coupling.num_qubits} qubits"
            )
        # The nested view is only needed by the reference scorer and
        # external readers; the `dist` property rebuilds it lazily from
        # the flat buffer, so the fast path never pays the O(N^2) copy.
        self._dist_nested: Optional[List[List[float]]] = None
        self.scorer = resolve_scorer(self.config.scorer)
        if self.scorer in ("fast", "vector") and not self.flat_dist.symmetric:
            # The delta scorers skip gates between the two swapped
            # qubits, which is only exact for symmetric matrices (all
            # in-repo matrices are).  Fall back rather than mis-score.
            self.scorer = "reference"
        self.neighbors: List[List[int]] = [
            coupling.neighbors(q) for q in range(coupling.num_qubits)
        ]
        #: Listified distance buffer shared (read-only) by every run's
        #: RouterState, so repeated runs skip the O(N^2) conversion.
        self._buf_list: List[float] = self.flat_dist.buf.tolist()
        #: Adjacency as sets for the O(1) executability test in the
        #: main loop (bypasses CouplingGraph's bounds-checked API).
        self._adjacency: List[Set[int]] = [set(nbs) for nbs in self.neighbors]
        if self.scorer == "vector":
            #: Device-constant kernel tables, shared read-only by every
            #: run's VectorBlock.
            self._vdev: Optional[VectorDevice] = VectorDevice(
                self.flat_dist, self.neighbors
            )
        else:
            self._vdev = None
        if stall_limit is None:
            stall_limit = max(64, 16 * coupling.diameter())
        self.stall_limit = stall_limit
        #: Interned SWAP gates keyed ``pa * N + pb``: the router emits
        #: the same few hundred physical SWAPs millions of times per
        #: layout sweep, and Gate is immutable, so sharing is safe.
        self._swap_cache: dict = {}
        #: Test seam: when set, called once per SWAP selection with the
        #: list of best-scoring (qa, qb) pairs *before* the tie-break.
        self.on_winner_set: Optional[
            Callable[[List[Tuple[int, int]]], None]
        ] = None

    @property
    def dist(self) -> List[List[float]]:
        """Nested list-of-lists view of the distance matrix.

        Kept for the reference scorer and external consumers; the hot
        paths use :attr:`flat_dist` directly.  Materialised lazily when
        the router was constructed from a :class:`FlatDistance`.
        """
        if self._dist_nested is None:
            self._dist_nested = self.flat_dist.to_matrix()
        return self._dist_nested

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        circuit: Union[QuantumCircuit, FlatDag],
        initial_layout: Optional[Layout] = None,
        seed: Optional[int] = None,
        frontier: Optional[FrontierState] = None,
    ) -> RoutingResult:
        """Route ``circuit`` onto the device from ``initial_layout``.

        ``circuit`` is either a :class:`QuantumCircuit` (lowered to a
        fresh :class:`~repro.circuits.flatdag.FlatDag` on the spot) or
        a prebuilt — typically cached and shared — IR.  The circuit
        must already be in a <=2-qubit basis (the compiler front door
        handles decomposition).  Returns a :class:`RoutingResult`;
        ``result.circuit`` is guaranteed hardware-compliant.

        ``seed`` overrides the constructor's tie-break seed for this
        run only.  ``frontier`` is an optional reusable
        :class:`~repro.circuits.flatdag.FrontierState` built over the
        same IR; it is reset (O(n) array refill, no reallocation) at
        the start of the run — the layout search passes one per
        traversal direction.  When omitted, every run builds a private
        frontier, RNG, and :class:`~repro.core.scoring.RouterState` —
        no mutable state is shared between runs, so concurrent trials
        routing through one router instance stay independent and
        deterministic.
        """
        ir = circuit if isinstance(circuit, FlatDag) else FlatDag.from_circuit(circuit)
        n_physical = self.coupling.num_qubits
        if ir.num_qubits > n_physical:
            raise MappingError(
                f"circuit has {ir.num_qubits} logical qubits but device "
                f"{self.coupling.name!r} has only {n_physical} physical qubits"
            )
        if not ir.routable:
            for gate in ir.gates:
                if gate.num_qubits > 2 and not gate.is_directive:
                    raise MappingError(
                        f"gate {gate} has {gate.num_qubits} qubits; decompose to "
                        "the {1q, CNOT} basis before routing"
                    )

        layout = (initial_layout or Layout.trivial(n_physical)).copy()
        if layout.num_qubits != n_physical:
            raise MappingError(
                f"layout covers {layout.num_qubits} qubits, device has {n_physical}"
            )
        rng = random.Random(self.seed if seed is None else seed)
        if frontier is None:
            frontier = FrontierState(ir)
        else:
            if frontier.dag is not ir:
                raise MappingError(
                    "frontier was built over a different circuit IR; "
                    "build one FrontierState per FlatDag and reuse it"
                )
            frontier.reset()
        if self.scorer == "vector":
            return self._drive_solo(ir, layout, rng, frontier)
        # The reference path regenerates candidates from scratch and
        # rescores in full, so it gets no state to maintain — keeping
        # its timings an honest baseline.
        decay = DecayTracker(
            n_physical,
            self.config.decay_delta,
            self.config.decay_reset_interval,
        )
        state: Optional[RouterState] = (
            RouterState(
                self.flat_dist,
                self.neighbors,
                self.config,
                buf=self._buf_list,
            )
            if self.scorer == "fast"
            else None
        )

        out = QuantumCircuit(
            n_physical, f"{ir.name}_routed", max(ir.num_clbits, 1)
        )
        swap_positions: List[int] = []
        initial = layout.copy()
        num_escapes = 0
        stall = 0

        # Hot-loop locals: every name bound here is read thousands of
        # times per traversal; ``l2p`` is the layout's live table (the
        # list object survives swaps, only its entries change).
        l2p = layout.l2p
        emit = out.append_unchecked
        gates = ir.gates
        pairs = ir.pairs
        qubit_a = ir.qubit_a
        qubit_b = ir.qubit_b
        adjacency = self._adjacency
        uses_lookahead = self.config.uses_lookahead
        ext_size = self.config.extended_set_size

        self._emit_ready(frontier, l2p, emit)
        front_nodes: List[int] = []
        ext_nodes: List[int] = []
        front_gates: List[Gate] = []
        extended: List[Gate] = []
        front_dirty = True
        # Checked once per traversal, not once per SWAP: disabled-mode
        # cost is a single thread-local read for the whole run.
        profiler = active_router_profiler()
        while not frontier.done:
            # Execute every front-layer gate whose operands are coupled
            # (Algorithm 1 lines 8-16).  The cached ascending front
            # list makes the ready scan allocation- and sort-free.
            ready = [
                index
                for index in frontier.front_list()
                if l2p[qubit_b[index]] in adjacency[l2p[qubit_a[index]]]
            ]
            if ready:
                frontier.execute_front_batch(ready)
                for index in ready:
                    emit(remap_gate(gates[index], l2p))
                self._emit_ready(frontier, l2p, emit)
                decay.reset()
                stall = 0
                front_dirty = True
                continue
            if stall >= self.stall_limit:
                self._escape(
                    frontier,
                    layout,
                    lambda qa, qb: self._apply_swap(
                        qa, qb, layout, out, swap_positions, state
                    ),
                )
                num_escapes += 1
                stall = 0
                decay.reset()
                front_dirty = True
                continue
            if front_dirty:
                # F and E only change when a gate executes, so the pair
                # lists, per-qubit term indices, and candidate edge set
                # are shared across consecutive SWAP selections; SWAPs
                # in between update the candidate set incrementally.
                front_nodes = frontier.front_list()
                ext_nodes = (
                    frontier.extended_nodes(ext_size) if uses_lookahead else []
                )
                if state is not None:
                    state.set_front(
                        [pairs[i] for i in front_nodes],
                        [pairs[i] for i in ext_nodes],
                        l2p,
                    )
                else:
                    front_gates = [gates[i] for i in front_nodes]
                    extended = [gates[i] for i in ext_nodes]
                front_dirty = False
            self._insert_best_swap(
                frontier, layout, out, swap_positions, decay, rng,
                front_gates, extended, state, profiler,
            )
            stall += 1

        return RoutingResult(
            circuit=out,
            initial_layout=initial,
            final_layout=layout,
            num_swaps=len(swap_positions),
            swap_positions=swap_positions,
            num_forced_escapes=num_escapes,
        )

    # ------------------------------------------------------------------
    # Vector path: generator traversal + drivers
    # ------------------------------------------------------------------

    def _drive_solo(
        self,
        ir: FlatDag,
        layout: Layout,
        rng: random.Random,
        frontier: FrontierState,
    ) -> RoutingResult:
        """Drive one vector-scorer traversal with a one-row block."""
        block = VectorBlock(
            self._vdev, self.neighbors, self.config, self._buf_list, rows=1
        )
        decay = DecayArray(
            self.coupling.num_qubits,
            self.config.decay_delta,
            self.config.decay_reset_interval,
            values=block.dv[0],
        )
        gen = self._route_vector(ir, layout, rng, frontier, block, 0, decay)
        rngs = (rng,)
        profiler = active_router_profiler()
        try:
            gen.send(None)
            if profiler is None:
                while True:
                    gen.send(
                        block.score_rows(
                            _SOLO_ROWS,
                            rngs,
                            emit_sets=self.on_winner_set is not None,
                        )[0]
                    )
            else:
                # Profiled driver: time every kernel call, and force
                # winner-set emission so the generator sees tie sizes
                # (it guards the user seam being unset itself).
                perf = time.perf_counter
                while True:
                    t0 = perf()
                    scored = block.score_rows(
                        _SOLO_ROWS, rngs, emit_sets=True
                    )[0]
                    profiler.add_kernel(perf() - t0)
                    gen.send(scored)
        except StopIteration as stop:
            return stop.value

    def _route_vector(
        self,
        ir: FlatDag,
        layout: Layout,
        rng: random.Random,
        frontier: FrontierState,
        block: VectorBlock,
        row: int,
        decay: DecayArray,
        emitting: bool = True,
    ):
        """One routing traversal as a generator (vector scorer).

        Structurally the same loop as :meth:`run`'s scalar body, but
        candidate scoring on wide fronts happens *outside*: the
        generator yields its block row index whenever it needs a
        kernel-scored step and receives the winner triples back via
        ``send``.  Narrow fronts are scored inline (scalar loop).  The
        driver owns the kernel call — :meth:`_drive_solo` scores one
        row at a time, the trial ensemble scores every stuck trial's
        row in a single call.  Returns (via ``StopIteration.value``)
        the same :class:`RoutingResult` as :meth:`run`.

        With ``emitting=False`` the traversal runs in *search mode*: no
        output circuit is built at all.  The loop makes the identical
        SWAP decisions (same scoring, same RNG stream) but tracks only
        what traversal selection needs — the SWAP count, a per-wire
        ASAP depth mirror of the circuit it would have emitted, and the
        SWAP record itself — returning a :class:`SearchTrace`.  The
        trial ensemble routes every search traversal this way and
        replays only each trial's winner (:meth:`_replay`) into a real,
        byte-identical circuit.
        """
        initial = layout.copy()
        num_escapes = 0
        stall = 0
        # Generator bodies run on the *driver's* thread (first send), so
        # this reads the driver's thread-local profiler — once per
        # traversal, shared by every kernel-scored step below.
        profiler = active_router_profiler()
        l2p = layout.l2p
        p2l = layout.p2l
        gates = ir.gates
        pairs = ir.pairs
        qubit_a = ir.qubit_a
        qubit_b = ir.qubit_b
        qa_np = ir.qubit_a_np
        qb_np = ir.qubit_b_np
        adjacency = self._adjacency
        uses_lookahead = self.config.uses_lookahead
        uses_decay = self.config.uses_decay
        ext_size = self.config.extended_set_size
        narrow = block.narrow
        block.bind_layout(row, l2p)
        record_swap = decay.record_swap
        note_chosen = block.note_chosen
        drain_nonrouting = frontier.drain_nonrouting
        # Row mirrors of the block, pre-bound for the inlined
        # ``VectorBlock.on_swap`` in ``apply_swap`` below (the method
        # body is replicated here — this path runs every SWAP of every
        # trial, and the per-call attribute walk was measurable).
        nd = block.device.n
        b_pl = block.pl[row]
        b_l2 = block.l2p[row]
        b_pfq = block.pfq[row]
        b_hm = block.hm[row]

        # Incremental ready-check state: ``fgate`` maps each logical
        # qubit to its (unique) front gate; ``check`` holds the only
        # gates that could have become executable since the last scan —
        # gates whose qubit was just SWAPped plus fresh front entries.
        fgate: dict = {}
        check: List[int] = []

        if emitting:
            out = QuantumCircuit(
                self.coupling.num_qubits,
                f"{ir.name}_routed",
                max(ir.num_clbits, 1),
            )
            swap_positions: List[int] = []
            emit = out.append_unchecked
            swap_cache = self._swap_cache

            def apply_swap(qa: int, qb: int) -> None:
                pa = l2p[qa]
                pb = l2p[qb]
                swap_positions.append(out.num_gates)
                key = pa * nd + pb
                g = swap_cache.get(key)
                if g is None:
                    g = swap_cache[key] = swap_gate(pa, pb)
                emit(g)
                l2p[qa] = pb
                l2p[qb] = pa
                p2l[pa] = qb
                p2l[pb] = qa
                b_pl[pa] = qb
                b_pl[pb] = qa
                b_l2[qa] = pb
                b_l2[qb] = pa
                if not narrow[row]:
                    x = b_pfq[qa]
                    y = b_pfq[qb]
                    b_pl[nd + pb] = b_l2[x] if x >= 0 else -1
                    b_pl[nd + pa] = b_l2[y] if y >= 0 else -1
                    if x >= 0:
                        b_pl[nd + b_l2[x]] = pb
                    if y >= 0:
                        b_pl[nd + b_l2[y]] = pa
                    ax = x >= 0
                    bx = y >= 0
                    if ax != bx:
                        if ax:
                            b_hm[pa] = False
                            b_hm[pb] = True
                        else:
                            b_hm[pb] = False
                            b_hm[pa] = True
                g1 = fgate.get(qa)
                if g1 is not None:
                    check.append(g1)
                g2 = fgate.get(qb)
                if g2 is not None and g2 is not g1:
                    check.append(g2)

            def flush() -> None:
                for index in drain_nonrouting():
                    emit(remap_gate(gates[index], l2p))

        else:
            # Search mode: per-wire ASAP counters stand in for the
            # circuit (``circuit_depth`` over the same gate stream),
            # and the decision record makes the traversal replayable.
            wire = [0] * self.coupling.num_qubits
            rec: List[Tuple[int, int]] = []
            rec_push = rec.append
            escapes: List[Tuple[int, int]] = []

            def apply_swap(qa: int, qb: int) -> None:
                pa = l2p[qa]
                pb = l2p[qb]
                rec_push((qa, qb))
                wa = wire[pa]
                wb = wire[pb]
                end = (wa if wa >= wb else wb) + 1
                wire[pa] = end
                wire[pb] = end
                l2p[qa] = pb
                l2p[qb] = pa
                p2l[pa] = qb
                p2l[pb] = qa
                b_pl[pa] = qb
                b_pl[pb] = qa
                b_l2[qa] = pb
                b_l2[qb] = pa
                if not narrow[row]:
                    x = b_pfq[qa]
                    y = b_pfq[qb]
                    b_pl[nd + pb] = b_l2[x] if x >= 0 else -1
                    b_pl[nd + pa] = b_l2[y] if y >= 0 else -1
                    if x >= 0:
                        b_pl[nd + b_l2[x]] = pb
                    if y >= 0:
                        b_pl[nd + b_l2[y]] = pa
                    ax = x >= 0
                    bx = y >= 0
                    if ax != bx:
                        if ax:
                            b_hm[pa] = False
                            b_hm[pb] = True
                        else:
                            b_hm[pb] = False
                            b_hm[pa] = True
                g1 = fgate.get(qa)
                if g1 is not None:
                    check.append(g1)
                g2 = fgate.get(qb)
                if g2 is not None and g2 is not g1:
                    check.append(g2)

            def flush() -> None:
                for index in drain_nonrouting():
                    g = gates[index]
                    if g.name in _DEPTH_SKIP:
                        continue
                    qs = g.qubits
                    if len(qs) == 1:
                        wire[l2p[qs[0]]] += 1
                    elif qs:
                        end = max(wire[l2p[q]] for q in qs) + 1
                        for q in qs:
                            wire[l2p[q]] = end

        flush()
        frontier.track_front_log = True
        frontier.front_log.clear()
        for index in frontier.front_list():
            fgate[qubit_a[index]] = index
            fgate[qubit_b[index]] = index
        check.extend(frontier.front_list())
        front_dirty = True
        while not frontier.done:
            if check:
                if len(check) > 1:
                    ready = [
                        index
                        for index in sorted(set(check))
                        if l2p[qubit_b[index]] in adjacency[l2p[qubit_a[index]]]
                    ]
                else:
                    index = check[0]
                    ready = (
                        [index]
                        if l2p[qubit_b[index]] in adjacency[l2p[qubit_a[index]]]
                        else []
                    )
                check.clear()
            else:
                ready = []
            if ready:
                frontier.execute_front_batch(ready)
                if emitting:
                    for index in ready:
                        emit(remap_gate(gates[index], l2p))
                        del fgate[qubit_a[index]]
                        del fgate[qubit_b[index]]
                else:
                    for index in ready:
                        qa = qubit_a[index]
                        qb = qubit_b[index]
                        pa = l2p[qa]
                        pb = l2p[qb]
                        wa = wire[pa]
                        wb = wire[pb]
                        end = (wa if wa >= wb else wb) + 1
                        wire[pa] = end
                        wire[pb] = end
                        del fgate[qa]
                        del fgate[qb]
                flush()
                released = frontier.drain_front_log()
                for index in released:
                    fgate[qubit_a[index]] = index
                    fgate[qubit_b[index]] = index
                check.extend(released)
                decay.reset()
                stall = 0
                front_dirty = True
                continue
            if stall >= self.stall_limit:
                if emitting:
                    self._escape(frontier, layout, apply_swap)
                else:
                    span = len(rec)
                    self._escape(frontier, layout, apply_swap)
                    escapes.append((span, len(rec) - span))
                note_chosen(row)
                num_escapes += 1
                stall = 0
                decay.reset()
                front_dirty = True
                continue
            if front_dirty:
                front_nodes = frontier.front_list()
                ext_nodes = (
                    frontier.extended_nodes(ext_size) if uses_lookahead else []
                )
                block.set_front(
                    row, front_nodes, ext_nodes, qa_np, qb_np, pairs, l2p
                )
                front_dirty = False
            if narrow[row]:
                if profiler is None:
                    best = block.score_scalar(
                        row, l2p, p2l, decay.values, uses_decay
                    )
                else:
                    t0 = time.perf_counter()
                    best = block.score_scalar(
                        row, l2p, p2l, decay.values, uses_decay
                    )
                    profiler.add_kernel(time.perf_counter() - t0)
                    profiler.record_step(-1, len(best))
                if self.on_winner_set is not None:
                    self.on_winner_set([(qa, qb) for qa, qb, _ in best])
                qa, qb, eidx = (
                    best[0] if len(best) == 1 else rng.choice(best)
                )
            else:
                # Kernel-scored step: _choose already folded the
                # winning lane's deltas into the row's running sums.
                qa, qb, eidx, wset = yield row
                if wset is not None:
                    # ``wset`` arrives when the driver asked for winner
                    # sets — for the test seam, the profiler, or both;
                    # each consumer is guarded independently.
                    if profiler is not None:
                        profiler.record_step(
                            int(getattr(block, "_lane_c", -1)), len(wset)
                        )
                    if self.on_winner_set is not None:
                        self.on_winner_set(wset)
            apply_swap(qa, qb)
            record_swap(qa, qb)
            stall += 1

        frontier.track_front_log = False
        if not emitting:
            return SearchTrace(
                initial_layout=initial,
                final_layout=layout,
                num_swaps=len(rec),
                depth=max(wire) if wire else 0,
                swaps=rec,
                escapes=escapes,
                num_forced_escapes=num_escapes,
            )
        return RoutingResult(
            circuit=out,
            initial_layout=initial,
            final_layout=layout,
            num_swaps=len(swap_positions),
            swap_positions=swap_positions,
            num_forced_escapes=num_escapes,
        )

    def _replay(
        self,
        ir: FlatDag,
        layout: Layout,
        frontier: FrontierState,
        trace: SearchTrace,
    ) -> RoutingResult:
        """Re-emit a recorded search traversal as a real circuit.

        Purely mechanical: no scoring, no RNG, no decay — the SWAP
        sequence in ``trace`` *is* the decision stream, and the ready
        scan between SWAPs reproduces exactly where the search loop
        executed gates (same layouts, same frontier evolution).  The
        result is byte-identical to what the traversal would have
        emitted with ``emitting=True``.  ``frontier`` must be freshly
        reset over ``ir``; ``layout`` must equal
        ``trace.initial_layout`` (pass a copy).
        """
        out = QuantumCircuit(
            self.coupling.num_qubits, f"{ir.name}_routed", max(ir.num_clbits, 1)
        )
        swap_positions: List[int] = []
        initial = layout.copy()
        l2p = layout.l2p
        p2l = layout.p2l
        emit = out.append_unchecked
        gates = ir.gates
        qubit_a = ir.qubit_a
        qubit_b = ir.qubit_b
        adjacency = self._adjacency
        swap_cache = self._swap_cache
        nd = self.coupling.num_qubits
        swaps = trace.swaps
        esc = dict(trace.escapes)
        drain_nonrouting = frontier.drain_nonrouting
        fgate: dict = {}
        check: List[int] = []

        def apply_swap(qa: int, qb: int) -> None:
            pa = l2p[qa]
            pb = l2p[qb]
            swap_positions.append(out.num_gates)
            key = pa * nd + pb
            g = swap_cache.get(key)
            if g is None:
                g = swap_cache[key] = swap_gate(pa, pb)
            emit(g)
            l2p[qa] = pb
            l2p[qb] = pa
            p2l[pa] = qb
            p2l[pb] = qa
            g1 = fgate.get(qa)
            if g1 is not None:
                check.append(g1)
            g2 = fgate.get(qb)
            if g2 is not None and g2 is not g1:
                check.append(g2)

        for index in drain_nonrouting():
            emit(remap_gate(gates[index], l2p))
        frontier.track_front_log = True
        frontier.front_log.clear()
        for index in frontier.front_list():
            fgate[qubit_a[index]] = index
            fgate[qubit_b[index]] = index
        check.extend(frontier.front_list())
        si = 0
        while not frontier.done:
            if check:
                if len(check) > 1:
                    ready = [
                        index
                        for index in sorted(set(check))
                        if l2p[qubit_b[index]] in adjacency[l2p[qubit_a[index]]]
                    ]
                else:
                    index = check[0]
                    ready = (
                        [index]
                        if l2p[qubit_b[index]] in adjacency[l2p[qubit_a[index]]]
                        else []
                    )
                check.clear()
            else:
                ready = []
            if ready:
                frontier.execute_front_batch(ready)
                for index in ready:
                    emit(remap_gate(gates[index], l2p))
                    del fgate[qubit_a[index]]
                    del fgate[qubit_b[index]]
                for index in drain_nonrouting():
                    emit(remap_gate(gates[index], l2p))
                released = frontier.drain_front_log()
                for index in released:
                    fgate[qubit_a[index]] = index
                    fgate[qubit_b[index]] = index
                check.extend(released)
                continue
            span = esc.get(si)
            if span:
                # A livelock-escape span: the search applied these
                # SWAPs back-to-back without re-scanning for ready
                # gates, so the replay must too.
                for _ in range(span):
                    qa, qb = swaps[si]
                    si += 1
                    apply_swap(qa, qb)
            else:
                qa, qb = swaps[si]
                si += 1
                apply_swap(qa, qb)
        frontier.track_front_log = False
        return RoutingResult(
            circuit=out,
            initial_layout=initial,
            final_layout=layout,
            num_swaps=len(swap_positions),
            swap_positions=swap_positions,
            num_forced_escapes=trace.num_forced_escapes,
        )

    # ------------------------------------------------------------------
    # Main-loop pieces
    # ------------------------------------------------------------------

    def _emit_ready(
        self, frontier: FrontierState, l2p: Sequence[int], emit
    ) -> None:
        """Flush ready non-routing gates (1q, measure, barrier) to output."""
        gates = frontier.dag.gates
        for index in frontier.drain_nonrouting():
            emit(remap_gate(gates[index], l2p))

    def _swap_candidates(
        self, frontier: FrontierState, layout: Layout
    ) -> List[Tuple[int, int]]:
        """Physical edges adjacent to at least one front-layer qubit.

        This is the §IV-C1 search-space reduction: SWAPs entirely within
        the "low priority" qubit set cannot unblock the front layer, so
        only edges touching ``pi(q)`` for ``q`` in a front gate qualify.

        From-scratch reference implementation; the main loop maintains
        the same set incrementally in its :class:`RouterState` (the
        candidate-cache tests assert both always agree).
        """
        l2p = layout.l2p
        qubit_a = frontier.dag.qubit_a
        qubit_b = frontier.dag.qubit_b
        candidates: Set[Tuple[int, int]] = set()
        for index in frontier.front:
            for q in (qubit_a[index], qubit_b[index]):
                p = l2p[q]
                for nb in self.neighbors[p]:
                    candidates.add((p, nb) if p < nb else (nb, p))
        return sorted(candidates)

    def _insert_best_swap(
        self,
        frontier: FrontierState,
        layout: Layout,
        out: QuantumCircuit,
        swap_positions: List[int],
        decay: DecayTracker,
        rng: random.Random,
        front_gates: List[Gate],
        extended: List[Gate],
        state: Optional[RouterState],
        profiler=None,
    ) -> None:
        """Score all candidate SWAPs and apply the best one (lines 17-25)."""
        p2l = layout.p2l
        l2p = layout.l2p
        config = self.config
        uses_decay = config.uses_decay
        penalty = config.swap_cost_penalty
        best_score = float("inf")
        best: List[Tuple[int, int]] = []
        if state is not None:
            buf = state.buf
            n = state.n
            # Inlined RouterState.swap_score: this loop runs a hundred
            # thousand times per deep traversal, so every attribute
            # lookup and method call stripped here is measurable.
            state.begin_step(l2p)
            partner_f = state.partner_f
            partners_e = state.partners_e
            sum_f = state.sum_f
            sum_e = state.sum_e
            len_f = len(state.front_pairs)
            len_e = len(state.ext_pairs)
            weight = config.extended_set_weight
            basic = config.mode == "basic"
            decay_values = decay.values
            # When neither swapped qubit touches E, the extended term is
            # the same constant for every such candidate (delta_e == 0.0
            # keeps the float arithmetic identical to the general form).
            ext_const = weight * (sum_e + 0.0) / len_e if len_e else 0.0
            cands = state.candidates()
            for pa, pb in cands:
                qa = p2l[pa]
                qb = p2l[pb]
                row_a = pa * n
                row_b = pb * n
                delta = 0.0
                other = partner_f[qa]
                if other >= 0 and other != qb:
                    po = l2p[other]
                    delta += buf[row_b + po] - buf[row_a + po]
                other = partner_f[qb]
                if other >= 0 and other != qa:
                    po = l2p[other]
                    delta += buf[row_a + po] - buf[row_b + po]
                if basic:
                    score = sum_f + delta
                else:
                    score = (sum_f + delta) / len_f
                    if len_e:
                        pe_a = partners_e[qa]
                        pe_b = partners_e[qb]
                        if pe_a or pe_b:
                            delta = 0.0
                            for other in pe_a:
                                if other != qb:
                                    po = l2p[other]
                                    delta += buf[row_b + po] - buf[row_a + po]
                            for other in pe_b:
                                if other != qa:
                                    po = l2p[other]
                                    delta += buf[row_a + po] - buf[row_b + po]
                            score += weight * (sum_e + delta) / len_e
                        else:
                            score += ext_const
                if uses_decay:
                    da = decay_values[qa]
                    db = decay_values[qb]
                    score *= da if da >= db else db
                if penalty:
                    # Noise-aware extension: pay for the SWAP's own edge.
                    score += penalty * (buf[pa * n + pb] - 1.0)
                if score < best_score - _SCORE_EPSILON:
                    best_score = score
                    best = [(qa, qb)]
                elif score <= best_score + _SCORE_EPSILON:
                    best.append((qa, qb))
        else:
            # Reference path: the seed implementation, preserved verbatim
            # — from-scratch candidate generation plus a full Eq. 2
            # rescoring per candidate.  This is the bench baseline and
            # the differential-testing oracle.
            dist = self.dist
            cands = self._swap_candidates(frontier, layout)
            for pa, pb in cands:
                qa, qb = p2l[pa], p2l[pb]
                layout.swap_logical(qa, qb)
                score = score_layout(front_gates, extended, l2p, dist, config)
                layout.swap_logical(qa, qb)
                if uses_decay:
                    score *= decay.factor(qa, qb)
                if penalty:
                    score += penalty * (dist[pa][pb] - 1.0)
                if score < best_score - _SCORE_EPSILON:
                    best_score = score
                    best = [(qa, qb)]
                elif score <= best_score + _SCORE_EPSILON:
                    best.append((qa, qb))
        if not best:
            raise MappingError(
                "no SWAP candidates found; is the coupling graph connected?"
            )
        if profiler is not None:
            profiler.record_step(len(cands), len(best))
        if self.on_winner_set is not None:
            self.on_winner_set(best)
        qa, qb = best[0] if len(best) == 1 else rng.choice(best)
        self._apply_swap(qa, qb, layout, out, swap_positions, state)
        decay.record_swap(qa, qb)

    def _apply_swap(
        self,
        qa: int,
        qb: int,
        layout: Layout,
        out: QuantumCircuit,
        swap_positions: List[int],
        state: Optional[RouterState],
    ) -> None:
        """Emit a physical SWAP gate and update mapping + router state."""
        l2p = layout.l2p
        pa, pb = l2p[qa], l2p[qb]
        swap_positions.append(out.num_gates)
        out.append_unchecked(swap_gate(pa, pb))
        layout.swap_logical(qa, qb)
        if state is not None:
            state.on_swap_applied(qa, qb, pa, pb)

    def _escape(
        self,
        frontier: FrontierState,
        layout: Layout,
        apply_swap: Callable[[int, int], None],
    ) -> int:
        """Livelock escape: force-route the closest front gate.

        Walk the shortest physical path between the gate's two homes,
        SWAPping the first qubit along it until the pair is adjacent.
        Guarantees the next ready-front scan succeeds for that gate, so
        overall termination is unconditional.  Distance ties resolve to
        the lowest node id (the front list is ascending).  ``apply_swap``
        is the caller's swap applicator (the scalar and vector paths
        maintain different state, so the escape stays path-agnostic).
        """
        l2p = layout.l2p
        buf = self.flat_dist.buf
        n = self.flat_dist.n
        qubit_a = frontier.dag.qubit_a
        qubit_b = frontier.dag.qubit_b
        target = min(
            frontier.front_list(),
            key=lambda i: buf[l2p[qubit_a[i]] * n + l2p[qubit_b[i]]],
        )
        a = qubit_a[target]
        b = qubit_b[target]
        path = self.coupling.shortest_path(l2p[a], l2p[b])
        swaps = 0
        # Move logical qubit `a` along the path, leaving one edge for the
        # gate itself (after each swap, pi(a) advances one hop).
        for hop in path[1:-1]:
            qb = layout.logical(hop)
            apply_swap(a, qb)
            swaps += 1
        return swaps
