"""SABRE's SWAP-based heuristic search — Algorithm 1 of the paper.

One traversal: scan the dependency DAG from the initial front layer to
the end, executing every hardware-compatible gate immediately and
inserting the best-scoring SWAP whenever the front layer is stuck.

The search-space reduction that gives SABRE its exponential speedup
(§IV-C1) lives in :meth:`SabreRouter._swap_candidates`: only SWAPs on
physical edges touching a front-layer qubit are considered ("only the
SWAPs that associate with at least one qubit in the front layer are the
candidate SWAPs"), i.e. ``O(N)`` candidates instead of the ``O(exp(N))``
mapping combinations of the A* baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag, DagFrontier
from repro.circuits.gates import Gate
from repro.core.heuristic import DecayTracker, HeuristicConfig, score_layout
from repro.core.layout import Layout
from repro.exceptions import MappingError
from repro.hardware.coupling import CouplingGraph
from repro.hardware.distance import distance_matrix

#: Scores within this tolerance are considered tied (random tie-break).
_SCORE_EPSILON = 1e-9


@dataclass
class RoutingResult:
    """Output of one routing traversal.

    Attributes:
        circuit: the hardware-compliant circuit on *physical* wires.
            Inserted SWAPs appear as ``swap`` gates (decompose with
            :meth:`physical_circuit` for the 3-CNOT expansion).
        initial_layout: the mapping the traversal started from.
        final_layout: the mapping after all gates executed — the input
            to the next traversal in the bidirectional scheme.
        num_swaps: SWAPs inserted by this traversal.
        swap_positions: indices into ``circuit`` of the inserted SWAPs.
        num_forced_escapes: times the livelock escape hatch fired
            (0 in normal operation; see ``SabreRouter.stall_limit``).
    """

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int
    swap_positions: List[int] = field(default_factory=list)
    num_forced_escapes: int = 0

    @property
    def added_gates(self) -> int:
        """Additional gate count under the 3-CNOT SWAP decomposition —
        the paper's ``g_add`` metric."""
        return 3 * self.num_swaps

    def physical_circuit(self, decompose_swaps: bool = True) -> QuantumCircuit:
        """The routed circuit, optionally with SWAPs expanded to CNOTs."""
        if not decompose_swaps:
            return self.circuit
        from repro.circuits.decompositions import swap_decomposition

        out = QuantumCircuit(
            self.circuit.num_qubits, self.circuit.name, self.circuit.num_clbits
        )
        swap_set = set(self.swap_positions)
        for index, gate in enumerate(self.circuit):
            if index in swap_set:
                out.extend(swap_decomposition(*gate.qubits))
            else:
                out.append(gate)
        return out


class SabreRouter:
    """One-traversal SWAP-based heuristic search (Algorithm 1).

    Args:
        coupling: device coupling graph (must be connected).
        config: heuristic configuration; defaults to the paper's.
        seed: RNG seed for tie-breaking among equal-score SWAPs.
        distance: precomputed distance matrix (computed when omitted;
            pass it in when routing many circuits on one device).
        stall_limit: consecutive SWAP insertions without executing any
            gate before the escape hatch force-routes the closest
            front-layer gate along a shortest path.  The paper does not
            discuss livelock; with decay enabled it is essentially
            unreachable, but the hatch makes termination a theorem
            rather than an observation.  ``None`` derives a generous
            default from the device diameter.
    """

    def __init__(
        self,
        coupling: CouplingGraph,
        config: Optional[HeuristicConfig] = None,
        seed: Optional[int] = None,
        distance: Optional[Sequence[Sequence[float]]] = None,
        stall_limit: Optional[int] = None,
    ) -> None:
        coupling.require_connected()
        self.coupling = coupling
        self.config = config or HeuristicConfig()
        self.seed = seed
        self.dist = distance if distance is not None else distance_matrix(coupling)
        self.neighbors: List[List[int]] = [
            coupling.neighbors(q) for q in range(coupling.num_qubits)
        ]
        if stall_limit is None:
            stall_limit = max(64, 16 * coupling.diameter())
        self.stall_limit = stall_limit

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        circuit: QuantumCircuit,
        initial_layout: Optional[Layout] = None,
        seed: Optional[int] = None,
    ) -> RoutingResult:
        """Route ``circuit`` onto the device from ``initial_layout``.

        The circuit must already be in a <=2-qubit basis (the compiler
        front door handles decomposition).  Returns a
        :class:`RoutingResult`; ``result.circuit`` is guaranteed
        hardware-compliant.

        ``seed`` overrides the constructor's tie-break seed for this
        run only.  Every run builds a private ``random.Random`` from
        the effective seed — no RNG state is shared between runs, so
        concurrent trials routing through one router instance stay
        independent and deterministic.
        """
        n_physical = self.coupling.num_qubits
        if circuit.num_qubits > n_physical:
            raise MappingError(
                f"circuit has {circuit.num_qubits} logical qubits but device "
                f"{self.coupling.name!r} has only {n_physical} physical qubits"
            )
        for gate in circuit:
            if gate.num_qubits > 2 and not gate.is_directive:
                raise MappingError(
                    f"gate {gate} has {gate.num_qubits} qubits; decompose to "
                    "the {1q, CNOT} basis before routing"
                )

        layout = (initial_layout or Layout.trivial(n_physical)).copy()
        if layout.num_qubits != n_physical:
            raise MappingError(
                f"layout covers {layout.num_qubits} qubits, device has {n_physical}"
            )
        rng = random.Random(self.seed if seed is None else seed)
        dag = CircuitDag(circuit)
        frontier = DagFrontier(dag)
        decay = DecayTracker(
            n_physical, self.config.decay_delta, self.config.decay_reset_interval
        )

        out = QuantumCircuit(
            n_physical, f"{circuit.name}_routed", max(circuit.num_clbits, 1)
        )
        swap_positions: List[int] = []
        initial = layout.copy()
        num_escapes = 0
        stall = 0

        self._emit_ready(frontier, layout, out)
        front_gates: List[Gate] = []
        extended: List[Gate] = []
        front_dirty = True
        while not frontier.done:
            executed = self._execute_ready_front(frontier, layout, out)
            if executed:
                decay.reset()
                stall = 0
                front_dirty = True
                continue
            if stall >= self.stall_limit:
                self._escape(frontier, layout, out, swap_positions)
                num_escapes += 1
                stall = 0
                decay.reset()
                front_dirty = True
                continue
            if front_dirty:
                # F and E only change when a gate executes, so the lists
                # are shared across consecutive SWAP selections.
                front_gates = [
                    frontier.dag.nodes[i].gate for i in sorted(frontier.front)
                ]
                extended = (
                    frontier.extended_set(self.config.extended_set_size)
                    if self.config.uses_lookahead
                    else []
                )
                front_dirty = False
            self._insert_best_swap(
                frontier, layout, out, swap_positions, decay, rng,
                front_gates, extended,
            )
            stall += 1

        return RoutingResult(
            circuit=out,
            initial_layout=initial,
            final_layout=layout,
            num_swaps=len(swap_positions),
            swap_positions=swap_positions,
            num_forced_escapes=num_escapes,
        )

    # ------------------------------------------------------------------
    # Main-loop pieces
    # ------------------------------------------------------------------

    def _emit_ready(
        self, frontier: DagFrontier, layout: Layout, out: QuantumCircuit
    ) -> None:
        """Flush ready non-routing gates (1q, measure, barrier) to output."""
        l2p = layout.l2p
        for index in frontier.drain_nonrouting():
            out.append(frontier.dag.nodes[index].gate.remapped(l2p))

    def _execute_ready_front(
        self, frontier: DagFrontier, layout: Layout, out: QuantumCircuit
    ) -> bool:
        """Execute every front-layer gate whose operands are coupled.

        Returns True when at least one gate executed (Algorithm 1 lines
        8-16: remove from F, append released successors, continue).
        """
        l2p = layout.l2p
        ready = [
            index
            for index in frontier.front
            if self.coupling.are_coupled(
                l2p[frontier.dag.nodes[index].gate.qubits[0]],
                l2p[frontier.dag.nodes[index].gate.qubits[1]],
            )
        ]
        if not ready:
            return False
        for index in sorted(ready):
            frontier.execute_front_gate(index)
            out.append(frontier.dag.nodes[index].gate.remapped(l2p))
        self._emit_ready(frontier, layout, out)
        return True

    def _swap_candidates(
        self, frontier: DagFrontier, layout: Layout
    ) -> List[Tuple[int, int]]:
        """Physical edges adjacent to at least one front-layer qubit.

        This is the §IV-C1 search-space reduction: SWAPs entirely within
        the "low priority" qubit set cannot unblock the front layer, so
        only edges touching ``pi(q)`` for ``q`` in a front gate qualify.
        """
        l2p = layout.l2p
        candidates: Set[Tuple[int, int]] = set()
        for index in frontier.front:
            for q in frontier.dag.nodes[index].gate.qubits:
                p = l2p[q]
                for nb in self.neighbors[p]:
                    candidates.add((p, nb) if p < nb else (nb, p))
        return sorted(candidates)

    def _insert_best_swap(
        self,
        frontier: DagFrontier,
        layout: Layout,
        out: QuantumCircuit,
        swap_positions: List[int],
        decay: DecayTracker,
        rng: random.Random,
        front_gates: List[Gate],
        extended: List[Gate],
    ) -> None:
        """Score all candidate SWAPs and apply the best one (lines 17-25)."""
        p2l = layout.p2l
        l2p = layout.l2p
        best_score = float("inf")
        best: List[Tuple[int, int]] = []
        for pa, pb in self._swap_candidates(frontier, layout):
            qa, qb = p2l[pa], p2l[pb]
            layout.swap_logical(qa, qb)
            score = score_layout(front_gates, extended, l2p, self.dist, self.config)
            layout.swap_logical(qa, qb)
            if self.config.uses_decay:
                score *= decay.factor(qa, qb)
            if self.config.swap_cost_penalty:
                # Noise-aware extension: pay for the SWAP's own edge.
                score += self.config.swap_cost_penalty * (
                    self.dist[pa][pb] - 1.0
                )
            if score < best_score - _SCORE_EPSILON:
                best_score = score
                best = [(qa, qb)]
            elif score <= best_score + _SCORE_EPSILON:
                best.append((qa, qb))
        if not best:
            raise MappingError(
                "no SWAP candidates found; is the coupling graph connected?"
            )
        qa, qb = best[0] if len(best) == 1 else rng.choice(best)
        self._apply_swap(qa, qb, layout, out, swap_positions)
        decay.record_swap(qa, qb)

    def _apply_swap(
        self,
        qa: int,
        qb: int,
        layout: Layout,
        out: QuantumCircuit,
        swap_positions: List[int],
    ) -> None:
        """Emit a physical SWAP gate and update the mapping."""
        pa, pb = layout.physical(qa), layout.physical(qb)
        swap_positions.append(out.num_gates)
        out.append(Gate("swap", (pa, pb)))
        layout.swap_logical(qa, qb)

    def _escape(
        self,
        frontier: DagFrontier,
        layout: Layout,
        out: QuantumCircuit,
        swap_positions: List[int],
    ) -> int:
        """Livelock escape: force-route the closest front gate.

        Walk the shortest physical path between the gate's two homes,
        SWAPping the first qubit along it until the pair is adjacent.
        Guarantees the next `_execute_ready_front` succeeds for that
        gate, so overall termination is unconditional.
        """
        l2p = layout.l2p
        target = min(
            frontier.front,
            key=lambda i: self.dist[l2p[frontier.dag.nodes[i].gate.qubits[0]]][
                l2p[frontier.dag.nodes[i].gate.qubits[1]]
            ],
        )
        a, b = frontier.dag.nodes[target].gate.qubits
        path = self.coupling.shortest_path(l2p[a], l2p[b])
        swaps = 0
        # Move logical qubit `a` along the path, leaving one edge for the
        # gate itself (after each swap, pi(a) advances one hop).
        for hop in path[1:-1]:
            qb = layout.logical(hop)
            self._apply_swap(a, qb, layout, out, swap_positions)
            swaps += 1
        return swaps
