"""Reverse traversal for initial mapping (paper §IV-C2, Fig. 5).

Quantum circuits are reversible, so the routing problem of the reversed
circuit is the mirror image of the original's.  SABRE exploits this:

1. start from a random initial mapping and route the *original* circuit
   (forward traversal) — its final mapping reflects where qubits "want"
   to end up;
2. route the *reversed* circuit starting from that final mapping — the
   final mapping of this backward traversal is an initial mapping for
   the original circuit informed by *every* gate, with gates near the
   circuit's beginning weighted most (they were routed last);
3. route the original circuit from the updated initial mapping and emit
   that traversal's output.

The paper uses 3 traversals (forward-backward-forward) and keeps the
best of 5 random restarts (§V "Algorithm Configuration").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.flatdag import FrontierState
from repro.core.heuristic import HeuristicConfig
from repro.core.layout import Layout
from repro.core.router import RoutingResult, SabreRouter
from repro.core.scoring import FlatDistance
from repro.exceptions import MappingError
from repro.hardware.coupling import CouplingGraph


@dataclass
class TrialRecord:
    """Bookkeeping for one random restart.

    Attributes:
        seed: RNG seed that produced the random initial mapping.
        first_pass_swaps: SWAPs used by the very first forward traversal
            — with ``num_traversals == 1`` this is the paper's ``g_la``
            configuration (look-ahead heuristic, no reverse traversal).
        final_swaps: SWAPs used by the last forward traversal (the
            traversal whose output is kept) — the paper's ``g_op``.
    """

    seed: int
    first_pass_swaps: int
    final_swaps: int


@dataclass
class BidirectionalResult:
    """Best-of-trials output of the reverse-traversal search."""

    routing: RoutingResult
    initial_layout: Layout
    trials: List[TrialRecord] = field(default_factory=list)
    best_trial_index: int = 0

    @property
    def num_swaps(self) -> int:
        return self.routing.num_swaps

    @property
    def best_first_pass_swaps(self) -> int:
        """Best single-traversal swap count across trials (``g_la``)."""
        return min(t.first_pass_swaps for t in self.trials)


class SabreLayout:
    """Bidirectional-traversal layout search with random restarts.

    Args:
        coupling: device coupling graph.
        config: heuristic configuration (paper defaults when omitted).
        num_traversals: total traversals per trial; must be odd so the
            final (output) traversal runs forward.  The paper uses 3.
        num_trials: number of random initial mappings; best kept.
        seed: base RNG seed; trial ``t`` uses ``seed + t``.
        distance: optional shared distance matrix — nested rows or a
            :class:`~repro.core.scoring.FlatDistance` (the compiler
            front door passes the cached flattened form; every
            traversal of every trial then shares one buffer).
    """

    def __init__(
        self,
        coupling: CouplingGraph,
        config: Optional[HeuristicConfig] = None,
        num_traversals: int = 3,
        num_trials: int = 5,
        seed: int = 0,
        distance: Optional[
            Union[FlatDistance, Sequence[Sequence[float]]]
        ] = None,
    ) -> None:
        if num_traversals < 1 or num_traversals % 2 == 0:
            raise MappingError(
                "num_traversals must be odd (forward-backward-...-forward), "
                f"got {num_traversals}"
            )
        if num_trials < 1:
            raise MappingError("num_trials must be >= 1")
        self.coupling = coupling
        self.config = config or HeuristicConfig()
        self.num_traversals = num_traversals
        self.num_trials = num_trials
        self.seed = seed
        self.router = SabreRouter(
            coupling, config=self.config, seed=seed, distance=distance
        )

    def run(self, circuit: QuantumCircuit) -> BidirectionalResult:
        """Search initial mappings and return the best routed output.

        Best = fewest SWAPs in the final forward traversal, depth as the
        tie-break (both paper metrics, in that priority).

        The circuit is lowered into its compile-once flat IR exactly
        once per direction (through the engine cache, so a repeat
        compilation of the same circuit pays nothing at all) and every
        one of the ``num_trials x num_traversals`` routing passes
        shares those two read-only IRs plus one resettable frontier per
        direction — re-lowering and per-pass allocation both left the
        trial loop.
        """
        from repro.circuits.depth import circuit_depth
        from repro.engine.cache import get_flat_dag

        forward_ir = get_flat_dag(circuit)
        reverse_ir = get_flat_dag(circuit, direction="reverse")
        frontiers = (FrontierState(forward_ir), FrontierState(reverse_ir))
        best: Optional[BidirectionalResult] = None
        best_key = None
        trials: List[TrialRecord] = []
        for trial in range(self.num_trials):
            trial_seed = self.seed + trial
            layout = Layout.random(self.coupling.num_qubits, seed=trial_seed)
            first_pass_swaps = 0
            result: Optional[RoutingResult] = None
            for traversal in range(self.num_traversals):
                forward = traversal % 2 == 0
                # Per-trial tie-break seed: restarts previously shared
                # the router's base seed, so every trial replayed the
                # same tie-break sequence and differed only in its
                # initial mapping — and concurrent trials would have
                # raced on one stream.  Seeding each run by the trial
                # keeps trials statistically independent.
                result = self.router.run(
                    forward_ir if forward else reverse_ir,
                    initial_layout=layout,
                    seed=trial_seed,
                    frontier=frontiers[0] if forward else frontiers[1],
                )
                layout = result.final_layout
                if traversal == 0:
                    first_pass_swaps = result.num_swaps
                if not forward:
                    continue
                # Every forward traversal routes the real circuit, so
                # each is a candidate output; keeping the best seen
                # guarantees the reverse-traversal result is never worse
                # than the first traversal's (g_op <= g_la, Table II).
                key = (result.num_swaps, circuit_depth(result.circuit))
                if best_key is None or key < best_key:
                    best_key = key
                    best = BidirectionalResult(
                        routing=result,
                        initial_layout=result.initial_layout,
                        best_trial_index=trial,
                    )
            assert result is not None
            trials.append(
                TrialRecord(
                    seed=trial_seed,
                    first_pass_swaps=first_pass_swaps,
                    final_swaps=result.num_swaps,
                )
            )
        assert best is not None
        best.trials = trials
        return best
