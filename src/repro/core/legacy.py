"""Frozen pre-IR routing path: per-run object-DAG lowering.

Before the compile-once flat IR (:mod:`repro.circuits.flatdag`), every
:meth:`SabreRouter.run` call re-lowered its circuit into a fresh
:class:`~repro.circuits.dag.CircuitDag` of Python node objects, walked
a :class:`~repro.circuits.dag.DagFrontier` (dict/deque-backed extended
set, per-iteration front re-sort), and emitted output through
validated ``Gate.remapped`` copies.  This module preserves that loop
**verbatim** for two jobs:

- **Differential oracle** — the shared-IR/reset path must route
  byte-identical circuits to per-run-DAG construction for every
  heuristic mode and scorer; ``tests/core/test_flatdag_differential.py``
  pins the two paths against each other.
- **Perf baseline** — ``benchmarks/bench_router_perf.py`` times
  end-to-end :class:`LegacySabreLayout` trial sweeps against the
  shared-IR :class:`~repro.core.bidirectional.SabreLayout` so the
  speedup the IR buys is measured where users feel it.

Like the ``reference`` scorer, this code is deliberately *not* kept
fast — it is kept *faithful*.  The one behavioural deviation from the
pre-IR code: the livelock escape's closest-gate selection iterates the
front in ascending node order (the old code iterated a set, whose
order on distance ties was an accident of hashing), so both paths
break escape ties identically.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag, DagFrontier
from repro.circuits.gates import Gate
from repro.circuits.reverse import reversed_circuit
from repro.core.bidirectional import (
    BidirectionalResult,
    SabreLayout,
    TrialRecord,
)
from repro.core.heuristic import DecayTracker, score_layout
from repro.core.layout import Layout
from repro.core.router import _SCORE_EPSILON, RoutingResult, SabreRouter
from repro.core.scoring import RouterState
from repro.exceptions import MappingError


class LegacyDagRouter(SabreRouter):
    """The pre-IR :class:`SabreRouter`: lower-per-run, object frontier.

    Scoring internals (``RouterState``, candidate maintenance, decay,
    tie-breaking) are shared with the production router, so any output
    difference between the two isolates the IR/frontier rework.
    """

    def run(
        self,
        circuit: QuantumCircuit,
        initial_layout: Optional[Layout] = None,
        seed: Optional[int] = None,
        frontier: None = None,
    ) -> RoutingResult:
        """Pre-IR traversal: fresh ``CircuitDag`` + ``DagFrontier``."""
        if frontier is not None:
            raise MappingError(
                "LegacyDagRouter re-lowers per run; it takes no frontier"
            )
        n_physical = self.coupling.num_qubits
        if circuit.num_qubits > n_physical:
            raise MappingError(
                f"circuit has {circuit.num_qubits} logical qubits but device "
                f"{self.coupling.name!r} has only {n_physical} physical qubits"
            )
        for gate in circuit:
            if gate.num_qubits > 2 and not gate.is_directive:
                raise MappingError(
                    f"gate {gate} has {gate.num_qubits} qubits; decompose to "
                    "the {1q, CNOT} basis before routing"
                )

        layout = (initial_layout or Layout.trivial(n_physical)).copy()
        if layout.num_qubits != n_physical:
            raise MappingError(
                f"layout covers {layout.num_qubits} qubits, device has {n_physical}"
            )
        rng = random.Random(self.seed if seed is None else seed)
        dag = CircuitDag(circuit)
        dag_frontier = DagFrontier(dag)
        decay = DecayTracker(
            n_physical, self.config.decay_delta, self.config.decay_reset_interval
        )
        fast = self.scorer == "fast"
        state = (
            RouterState(self.flat_dist, self.neighbors, self.config)
            if fast
            else None
        )

        out = QuantumCircuit(
            n_physical, f"{circuit.name}_routed", max(circuit.num_clbits, 1)
        )
        swap_positions: List[int] = []
        initial = layout.copy()
        num_escapes = 0
        stall = 0

        self._dag_emit_ready(dag_frontier, layout, out)
        front_gates: List[Gate] = []
        extended: List[Gate] = []
        front_dirty = True
        while not dag_frontier.done:
            executed = self._dag_execute_ready_front(dag_frontier, layout, out)
            if executed:
                decay.reset()
                stall = 0
                front_dirty = True
                continue
            if stall >= self.stall_limit:
                self._dag_escape(dag_frontier, layout, out, swap_positions, state)
                num_escapes += 1
                stall = 0
                decay.reset()
                front_dirty = True
                continue
            if front_dirty:
                front_gates = [
                    dag_frontier.dag.nodes[i].gate
                    for i in sorted(dag_frontier.front)
                ]
                extended = (
                    dag_frontier.extended_set(self.config.extended_set_size)
                    if self.config.uses_lookahead
                    else []
                )
                if fast:
                    state.set_front(
                        [gate.qubits for gate in front_gates],
                        [gate.qubits for gate in extended],
                        layout.l2p,
                    )
                front_dirty = False
            self._dag_insert_best_swap(
                dag_frontier, layout, out, swap_positions, decay, rng,
                front_gates, extended, state,
            )
            stall += 1

        return RoutingResult(
            circuit=out,
            initial_layout=initial,
            final_layout=layout,
            num_swaps=len(swap_positions),
            swap_positions=swap_positions,
            num_forced_escapes=num_escapes,
        )

    # ------------------------------------------------------------------
    # Pre-IR main-loop pieces (object-DAG walkers)
    # ------------------------------------------------------------------

    def _dag_emit_ready(
        self, frontier: DagFrontier, layout: Layout, out: QuantumCircuit
    ) -> None:
        l2p = layout.l2p
        for index in frontier.drain_nonrouting():
            out.append(frontier.dag.nodes[index].gate.remapped(l2p))

    def _dag_execute_ready_front(
        self, frontier: DagFrontier, layout: Layout, out: QuantumCircuit
    ) -> bool:
        l2p = layout.l2p
        adjacency = self._adjacency
        nodes = frontier.dag.nodes
        ready = [
            index
            for index in frontier.front
            if l2p[nodes[index].gate.qubits[1]]
            in adjacency[l2p[nodes[index].gate.qubits[0]]]
        ]
        if not ready:
            return False
        for index in sorted(ready):
            frontier.execute_front_gate(index)
            out.append(frontier.dag.nodes[index].gate.remapped(l2p))
        self._dag_emit_ready(frontier, layout, out)
        return True

    def _dag_swap_candidates(
        self, frontier: DagFrontier, layout: Layout
    ) -> List[Tuple[int, int]]:
        l2p = layout.l2p
        candidates = set()
        for index in frontier.front:
            for q in frontier.dag.nodes[index].gate.qubits:
                p = l2p[q]
                for nb in self.neighbors[p]:
                    candidates.add((p, nb) if p < nb else (nb, p))
        return sorted(candidates)

    def _dag_insert_best_swap(
        self,
        frontier: DagFrontier,
        layout: Layout,
        out: QuantumCircuit,
        swap_positions: List[int],
        decay: DecayTracker,
        rng: random.Random,
        front_gates: List[Gate],
        extended: List[Gate],
        state: Optional[RouterState],
    ) -> None:
        p2l = layout.p2l
        l2p = layout.l2p
        config = self.config
        uses_decay = config.uses_decay
        penalty = config.swap_cost_penalty
        best_score = float("inf")
        best: List[Tuple[int, int]] = []
        if state is not None:
            buf = state.buf
            n = state.n
            state.begin_step(l2p)
            partner_f = state.partner_f
            partners_e = state.partners_e
            sum_f = state.sum_f
            sum_e = state.sum_e
            len_f = len(state.front_pairs)
            len_e = len(state.ext_pairs)
            weight = config.extended_set_weight
            basic = config.mode == "basic"
            decay_values = decay.values
            ext_const = weight * (sum_e + 0.0) / len_e if len_e else 0.0
            for pa, pb in state.candidates():
                qa = p2l[pa]
                qb = p2l[pb]
                row_a = pa * n
                row_b = pb * n
                delta = 0.0
                other = partner_f[qa]
                if other >= 0 and other != qb:
                    po = l2p[other]
                    delta += buf[row_b + po] - buf[row_a + po]
                other = partner_f[qb]
                if other >= 0 and other != qa:
                    po = l2p[other]
                    delta += buf[row_a + po] - buf[row_b + po]
                if basic:
                    score = sum_f + delta
                else:
                    score = (sum_f + delta) / len_f
                    if len_e:
                        pe_a = partners_e[qa]
                        pe_b = partners_e[qb]
                        if pe_a or pe_b:
                            delta = 0.0
                            for other in pe_a:
                                if other != qb:
                                    po = l2p[other]
                                    delta += buf[row_b + po] - buf[row_a + po]
                            for other in pe_b:
                                if other != qa:
                                    po = l2p[other]
                                    delta += buf[row_a + po] - buf[row_b + po]
                            score += weight * (sum_e + delta) / len_e
                        else:
                            score += ext_const
                if uses_decay:
                    da = decay_values[qa]
                    db = decay_values[qb]
                    score *= da if da >= db else db
                if penalty:
                    score += penalty * (buf[pa * n + pb] - 1.0)
                if score < best_score - _SCORE_EPSILON:
                    best_score = score
                    best = [(qa, qb)]
                elif score <= best_score + _SCORE_EPSILON:
                    best.append((qa, qb))
        else:
            dist = self.dist
            for pa, pb in self._dag_swap_candidates(frontier, layout):
                qa, qb = p2l[pa], p2l[pb]
                layout.swap_logical(qa, qb)
                score = score_layout(front_gates, extended, l2p, dist, config)
                layout.swap_logical(qa, qb)
                if uses_decay:
                    score *= decay.factor(qa, qb)
                if penalty:
                    score += penalty * (dist[pa][pb] - 1.0)
                if score < best_score - _SCORE_EPSILON:
                    best_score = score
                    best = [(qa, qb)]
                elif score <= best_score + _SCORE_EPSILON:
                    best.append((qa, qb))
        if not best:
            raise MappingError(
                "no SWAP candidates found; is the coupling graph connected?"
            )
        if self.on_winner_set is not None:
            self.on_winner_set(best)
        qa, qb = best[0] if len(best) == 1 else rng.choice(best)
        self._dag_apply_swap(qa, qb, layout, out, swap_positions, state)
        decay.record_swap(qa, qb)

    def _dag_apply_swap(
        self,
        qa: int,
        qb: int,
        layout: Layout,
        out: QuantumCircuit,
        swap_positions: List[int],
        state: Optional[RouterState],
    ) -> None:
        l2p = layout.l2p
        pa, pb = l2p[qa], l2p[qb]
        swap_positions.append(out.num_gates)
        out.append(Gate("swap", (pa, pb)))
        layout.swap_logical(qa, qb)
        if state is not None:
            state.on_swap_applied(qa, qb, pa, pb)

    def _dag_escape(
        self,
        frontier: DagFrontier,
        layout: Layout,
        out: QuantumCircuit,
        swap_positions: List[int],
        state: Optional[RouterState],
    ) -> int:
        l2p = layout.l2p
        buf = self.flat_dist.buf
        n = self.flat_dist.n
        nodes = frontier.dag.nodes
        # Ascending iteration so distance ties resolve exactly like the
        # flat path's sorted front list (see module docstring).
        target = min(
            sorted(frontier.front),
            key=lambda i: buf[
                l2p[nodes[i].gate.qubits[0]] * n
                + l2p[nodes[i].gate.qubits[1]]
            ],
        )
        a, b = nodes[target].gate.qubits
        path = self.coupling.shortest_path(l2p[a], l2p[b])
        swaps = 0
        for hop in path[1:-1]:
            qb = layout.logical(hop)
            self._dag_apply_swap(a, qb, layout, out, swap_positions, state)
            swaps += 1
        return swaps


class LegacySabreLayout(SabreLayout):
    """The pre-IR :class:`SabreLayout`: every traversal re-lowers.

    Same search, seeds, and winner selection as the production class —
    only the per-pass circuit representation differs — so output must
    be byte-identical and any wall-clock gap is the compile-once win.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.router = LegacyDagRouter(
            self.coupling,
            config=self.config,
            seed=self.seed,
            distance=self.router.flat_dist,
        )

    def run(self, circuit: QuantumCircuit) -> BidirectionalResult:
        """Pre-IR search loop: per-traversal circuit handoff."""
        from repro.circuits.depth import circuit_depth

        reverse = reversed_circuit(circuit)
        best: Optional[BidirectionalResult] = None
        best_key = None
        trials: List[TrialRecord] = []
        for trial in range(self.num_trials):
            trial_seed = self.seed + trial
            layout = Layout.random(self.coupling.num_qubits, seed=trial_seed)
            first_pass_swaps = 0
            result: Optional[RoutingResult] = None
            for traversal in range(self.num_traversals):
                forward = traversal % 2 == 0
                result = self.router.run(
                    circuit if forward else reverse,
                    initial_layout=layout,
                    seed=trial_seed,
                )
                layout = result.final_layout
                if traversal == 0:
                    first_pass_swaps = result.num_swaps
                if not forward:
                    continue
                key = (result.num_swaps, circuit_depth(result.circuit))
                if best_key is None or key < best_key:
                    best_key = key
                    best = BidirectionalResult(
                        routing=result,
                        initial_layout=result.initial_layout,
                        best_trial_index=trial,
                    )
            assert result is not None
            trials.append(
                TrialRecord(
                    seed=trial_seed,
                    first_pass_swaps=first_pass_swaps,
                    final_swaps=result.num_swaps,
                )
            )
        assert best is not None
        best.trials = trials
        return best
