"""Heuristic cost functions (paper §IV-D, Equations 1 and 2).

Three stacked designs, selectable via :class:`HeuristicConfig.mode`:

- ``"basic"`` — Equation 1: the summed nearest-neighbour cost (NNC) over
  the front layer ``F``.
- ``"lookahead"`` — Equation 2 without decay: normalised front-layer
  term plus a ``W``-weighted term over the extended set ``E`` of
  upcoming two-qubit gates.
- ``"decay"`` — full Equation 2: the look-ahead score multiplied by
  ``max(decay(q1), decay(q2))`` of the candidate SWAP's qubits, which
  steers search toward non-overlapping (parallel) SWAPs and exposes the
  gate-count/depth trade-off of Fig. 8.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.circuits.gates import Gate
from repro.exceptions import MappingError

#: Valid heuristic modes, weakest to strongest.
MODES = ("basic", "lookahead", "decay")

#: Concrete scorer implementations (see :func:`resolve_scorer`).
SCORERS = ("vector", "fast", "reference")

#: Environment knob consulted when ``HeuristicConfig.scorer == "auto"``.
SCORER_ENV_VAR = "REPRO_SCORER"


@dataclass(frozen=True)
class HeuristicConfig:
    """Tunable knobs of the SABRE cost function.

    Defaults are the paper's evaluation settings (§V "Algorithm
    Configuration"): ``|E| = 20``, ``W = 0.5``, ``delta = 0.001``, decay
    reset every 5 search steps or on gate execution.

    Attributes:
        mode: ``"basic"``, ``"lookahead"``, or ``"decay"``.
        extended_set_size: ``|E|``, number of look-ahead gates.
        extended_set_weight: ``W`` in Equation 2, ``0 <= W < 1``.
        decay_delta: ``delta``, the per-SWAP decay increment.
        decay_reset_interval: reset the decay table after this many
            consecutive SWAP selections.
        swap_cost_penalty: extension knob (0.0 = paper behaviour): adds
            ``penalty * (D[e] - 1)`` to a candidate SWAP's score, where
            ``D[e]`` is the distance-matrix length of the SWAP's own
            edge.  With the unit-hop matrix every edge has length 1 and
            the term vanishes; with a noise-weighted matrix it makes
            the router pay for executing 3 CNOTs on a noisy coupler
            (see :mod:`repro.extensions.noise_aware`).
        scorer: candidate-SWAP scoring implementation.  ``"vector"``
            scores every candidate of a step in one batched numpy
            kernel over the flat distance buffer; ``"fast"`` is the
            scalar flat-array delta scorer (:mod:`repro.core.scoring`,
            ``O(deg)`` per candidate); ``"reference"`` recomputes the
            full Eq. 2 sum per candidate exactly as written in the
            paper.  All three produce identical routed circuits (the
            differential suite enforces it).  The default ``"auto"``
            reads the ``REPRO_SCORER`` environment variable and falls
            back to ``"vector"``.
    """

    mode: str = "decay"
    extended_set_size: int = 20
    extended_set_weight: float = 0.5
    decay_delta: float = 0.001
    decay_reset_interval: int = 5
    swap_cost_penalty: float = 0.0
    scorer: str = "auto"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise MappingError(
                f"unknown heuristic mode {self.mode!r}; choose from {MODES}"
            )
        if self.extended_set_size < 0:
            raise MappingError("extended_set_size must be >= 0")
        if not 0.0 <= self.extended_set_weight < 1.0:
            raise MappingError(
                "extended_set_weight W must satisfy 0 <= W < 1 (paper §IV-D)"
            )
        if self.decay_delta < 0.0:
            raise MappingError("decay_delta must be >= 0")
        if self.decay_reset_interval < 1:
            raise MappingError("decay_reset_interval must be >= 1")
        if self.swap_cost_penalty < 0.0:
            raise MappingError("swap_cost_penalty must be >= 0")
        if self.scorer not in ("auto",) + SCORERS:
            raise MappingError(
                f"unknown scorer {self.scorer!r}; choose from "
                f"{('auto',) + SCORERS}"
            )

    @property
    def uses_lookahead(self) -> bool:
        return self.mode in ("lookahead", "decay") and self.extended_set_size > 0

    @property
    def uses_decay(self) -> bool:
        return self.mode == "decay"


def resolve_scorer(value: str) -> str:
    """Resolve a scorer name to a concrete implementation.

    ``"auto"`` consults the ``REPRO_SCORER`` environment variable
    (read at resolution time, so tests and profiling sessions can flip
    it per process) and defaults to ``"vector"``.
    """
    if value == "auto":
        value = os.environ.get(SCORER_ENV_VAR, "").strip().lower() or "vector"
    if value not in SCORERS:
        raise MappingError(
            f"unknown scorer {value!r}; choose from {SCORERS} "
            f"(or 'auto' / ${SCORER_ENV_VAR})"
        )
    return value


class DecayTracker:
    """Per-qubit decay parameters (§IV-D).

    Every qubit starts at 1.0.  When a SWAP on ``(q1, q2)`` is selected,
    both qubits' parameters grow by ``delta``; the table resets to all
    ones every ``reset_interval`` selections or whenever the router
    executes a gate ("this decay function is reset every 5 search steps
    or after a CNOT gate is executed", §V).
    """

    __slots__ = ("delta", "reset_interval", "values", "_steps")

    def __init__(self, num_qubits: int, delta: float, reset_interval: int) -> None:
        self.delta = delta
        self.reset_interval = reset_interval
        self.values: List[float] = [1.0] * num_qubits
        self._steps = 0

    def factor(self, q1: int, q2: int) -> float:
        """``max(decay(q1), decay(q2))`` — the Equation 2 multiplier."""
        v = self.values
        return v[q1] if v[q1] >= v[q2] else v[q2]

    def record_swap(self, q1: int, q2: int) -> None:
        """Bump both qubits after a SWAP is selected; auto-reset on the
        configured interval."""
        self.values[q1] += self.delta
        self.values[q2] += self.delta
        self._steps += 1
        if self._steps >= self.reset_interval:
            self.reset()

    def reset(self) -> None:
        """Forget all decay (called on reset interval and gate execution)."""
        self.values = [1.0] * len(self.values)
        self._steps = 0


class DecayArray:
    """Numpy-backed :class:`DecayTracker` for the vector scorer.

    Same semantics, same float arithmetic (IEEE double either way), but
    ``values`` is an ``np.ndarray`` so the batched kernel can gather
    ``max(decay(q1), decay(q2))`` for every candidate in one op.  The
    backing buffer may be passed in (the trial ensemble hands each
    trial a row view of its ``(K, n)`` decay matrix).
    """

    __slots__ = ("delta", "reset_interval", "values", "_steps")

    def __init__(
        self,
        num_qubits: int,
        delta: float,
        reset_interval: int,
        values: "np.ndarray" = None,
    ) -> None:
        self.delta = delta
        self.reset_interval = reset_interval
        if values is None:
            values = np.ones(num_qubits)
        else:
            values.fill(1.0)
        self.values = values
        self._steps = 0

    def factor(self, q1: int, q2: int) -> float:
        v = self.values
        return v[q1] if v[q1] >= v[q2] else v[q2]

    def record_swap(self, q1: int, q2: int) -> None:
        self.values[q1] += self.delta
        self.values[q2] += self.delta
        self._steps += 1
        if self._steps >= self.reset_interval:
            self.reset()

    def reset(self) -> None:
        self.values.fill(1.0)
        self._steps = 0


def mapped_distance_sum(
    gates: Sequence[Gate], l2p: Sequence[int], dist: Sequence[Sequence[float]]
) -> float:
    """``sum over gates of D[pi(q1)][pi(q2)]`` — the NNC building block."""
    total = 0.0
    for gate in gates:
        a, b = gate.qubits
        total += dist[l2p[a]][l2p[b]]
    return total


def score_layout(
    front_gates: Sequence[Gate],
    extended_gates: Sequence[Gate],
    l2p: Sequence[int],
    dist: Sequence[Sequence[float]],
    config: HeuristicConfig,
) -> float:
    """Distance part of the heuristic for the *current* ``l2p``.

    The router evaluates a candidate SWAP by temporarily applying it to
    the layout, calling this, then undoing it — "the mapping pi is
    temporarily changed by a SWAP and then H is calculated" (§IV-D).
    Decay is applied by the caller (it depends on the SWAP's qubits, not
    on the layout).

    - basic mode: Equation 1, the raw front-layer sum.
    - lookahead/decay modes: Equation 2's braced term, with each sum
      normalised by its set size.
    """
    if config.mode == "basic":
        return mapped_distance_sum(front_gates, l2p, dist)
    score = mapped_distance_sum(front_gates, l2p, dist) / len(front_gates)
    if extended_gates:
        score += (
            config.extended_set_weight
            * mapped_distance_sum(extended_gates, l2p, dist)
            / len(extended_gates)
        )
    return score
