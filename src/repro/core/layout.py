"""The qubit mapping ``pi`` (paper Table I).

``pi`` sends logical qubits to physical qubits; ``pi^-1`` sends physical
qubits back.  The paper's device always has at least as many physical
qubits as the circuit has logical qubits (``n <= N``); we *pad* the
logical side with ancilla ids ``n, n+1, ..., N-1`` so the layout is a
full permutation of ``range(N)``.  Padding makes SWAP bookkeeping
uniform — a SWAP with an unoccupied physical qubit is just a SWAP with
an ancilla — and matches how production routers implement SABRE.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from repro.exceptions import MappingError


class Layout:
    """A bijection between ``N`` logical slots and ``N`` physical qubits.

    Logical ids ``0..n-1`` are the circuit's qubits; ids ``n..N-1`` are
    padding ancillas.  Both directions are O(1).

    Args:
        logical_to_physical: permutation of ``range(N)``; entry ``q``
            gives the physical home of logical qubit ``q``.
    """

    __slots__ = ("_l2p", "_p2l")

    def __init__(self, logical_to_physical: Sequence[int]) -> None:
        l2p = list(logical_to_physical)
        n = len(l2p)
        if sorted(l2p) != list(range(n)):
            raise MappingError(
                "logical_to_physical must be a permutation of "
                f"range({n}), got {l2p}"
            )
        self._l2p: List[int] = l2p
        self._p2l: List[int] = [0] * n
        for logical, physical in enumerate(l2p):
            self._p2l[physical] = logical

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def trivial(cls, num_physical: int) -> "Layout":
        """The identity mapping: logical ``q`` on physical ``q``."""
        return cls(list(range(num_physical)))

    @classmethod
    def random(cls, num_physical: int, seed: Optional[int] = None) -> "Layout":
        """Uniformly random permutation (the paper's random start points,
        §IV-A 'Temporary initial mapping generation')."""
        rng = random.Random(seed)
        perm = list(range(num_physical))
        rng.shuffle(perm)
        return cls(perm)

    @classmethod
    def from_dict(
        cls, mapping: Dict[int, int], num_physical: int
    ) -> "Layout":
        """Build from a partial ``{logical: physical}`` dict.

        Unmentioned logical slots are padded onto the remaining physical
        qubits in ascending order.
        """
        used_physical = set(mapping.values())
        if len(used_physical) != len(mapping):
            raise MappingError("mapping sends two logical qubits to one physical")
        for logical, physical in mapping.items():
            if not 0 <= logical < num_physical:
                raise MappingError(f"logical qubit {logical} out of range")
            if not 0 <= physical < num_physical:
                raise MappingError(f"physical qubit {physical} out of range")
        free_physical = (p for p in range(num_physical) if p not in used_physical)
        l2p = [
            mapping[q] if q in mapping else next(free_physical)
            for q in range(num_physical)
        ]
        return cls(l2p)

    # ------------------------------------------------------------------
    # Mapping access
    # ------------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return len(self._l2p)

    def physical(self, logical: int) -> int:
        """``pi(q)``: the physical home of logical qubit ``q``."""
        return self._l2p[logical]

    def logical(self, physical: int) -> int:
        """``pi^-1(Q)``: the logical occupant of physical qubit ``Q``."""
        return self._p2l[physical]

    @property
    def l2p(self) -> List[int]:
        """Raw logical->physical table (mutate via :meth:`swap_*` only)."""
        return self._l2p

    @property
    def p2l(self) -> List[int]:
        """Raw physical->logical table."""
        return self._p2l

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def swap_logical(self, q1: int, q2: int) -> None:
        """Exchange the physical homes of logical qubits ``q1`` and ``q2``.

        This is what a SWAP gate does to the mapping (paper Fig. 3d:
        after SWAP q1,q2 the mapping updates to q1->Q2, q2->Q1).
        """
        p1, p2 = self._l2p[q1], self._l2p[q2]
        self._l2p[q1], self._l2p[q2] = p2, p1
        self._p2l[p1], self._p2l[p2] = q2, q1

    def swap_physical(self, p1: int, p2: int) -> None:
        """Exchange the logical occupants of physical qubits ``p1``/``p2``."""
        self.swap_logical(self._p2l[p1], self._p2l[p2])

    # ------------------------------------------------------------------
    # Conversion / comparison
    # ------------------------------------------------------------------

    def copy(self) -> "Layout":
        # The tables are a valid permutation pair by construction, so
        # skip __init__'s O(N log N) validation — the router copies
        # layouts on every traversal and the check was pure overhead.
        new = Layout.__new__(Layout)
        new._l2p = self._l2p[:]
        new._p2l = self._p2l[:]
        return new

    def to_dict(self, num_logical: Optional[int] = None) -> Dict[int, int]:
        """``{logical: physical}`` for the first ``num_logical`` qubits
        (defaults to all, padding included)."""
        n = self.num_qubits if num_logical is None else num_logical
        return {q: self._l2p[q] for q in range(n)}

    def compose_swaps(self, swaps: Iterable) -> "Layout":
        """Return the layout after applying a sequence of logical swaps."""
        new = self.copy()
        for q1, q2 in swaps:
            new.swap_logical(q1, q2)
        return new

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._l2p == other._l2p

    def __hash__(self) -> int:
        return hash(tuple(self._l2p))

    def __repr__(self) -> str:
        return f"Layout({self._l2p})"
