"""One-call public API: :func:`compile_circuit`.

Executes the ``paper_default`` pass pipeline
(:mod:`repro.pipeline`) the way the paper's evaluation ran it: basis
decomposition -> (optional) reverse-traversal layout search ->
SWAP-based routing -> metrics.  Everything is deterministic given
``seed``.

Two execution paths share this front door:

- the **direct path** (``executor=None``): the paper's configuration —
  one :class:`~repro.core.bidirectional.SabreLayout` search whose
  random restarts run in-process;
- the **engine path** (``executor="serial"``/``"process"``): each trial
  is an independent fully seeded pipeline execution dispatched through
  :mod:`repro.engine.trials`, ranked by a configurable ``objective``.
  ``"process"`` fans trials across a worker pool.

Either way the device's distance matrix is resolved through the engine
cache (:mod:`repro.engine.cache`), so repeated calls against one device
pay the O(N^3) Floyd-Warshall preprocessing once per process — and the
circuit is lowered into its compile-once flat IR
(:class:`~repro.circuits.flatdag.FlatDag`) through the same cache, so
repeated trials/traversals/calls against one circuit lower it once per
direction per process.

Other scenarios — noise-aware distances, directed-coupling
legalisation, bridge rewrites, baseline routers — are other pipelines:
pass ``pipeline="noise_aware"`` (or any name from
:func:`repro.pipeline.presets.preset_names`), or build a custom one
with :func:`repro.pipeline.compose_pipeline` / an explicit pass list.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.decompositions import needs_cx_decomposition
from repro.core.heuristic import HeuristicConfig
from repro.core.layout import Layout
from repro.core.result import MappingResult
from repro.core.scoring import FlatDistance
from repro.hardware.coupling import CouplingGraph


def _needs_decomposition(circuit: QuantumCircuit) -> bool:
    """Back-compat alias for :func:`needs_cx_decomposition` (which
    memoises the answer on the circuit instance)."""
    return needs_cx_decomposition(circuit)


def compile_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    config: Optional[HeuristicConfig] = None,
    seed: int = 0,
    num_trials: Optional[int] = None,
    num_traversals: Optional[int] = None,
    initial_layout: Optional[Layout] = None,
    distance: Optional[Union[FlatDistance, Sequence[Sequence[float]]]] = None,
    objective: str = "g_add",
    executor: Optional[str] = None,
    jobs: Optional[int] = None,
    pipeline: str = "paper_default",
) -> MappingResult:
    """Map ``circuit`` onto ``coupling`` with SABRE.

    Args:
        circuit: logical circuit; 3-qubit gates and explicit SWAPs are
            decomposed into the {1q, CNOT} basis automatically.
        coupling: device coupling graph (must be connected).
        config: heuristic knobs; defaults to the paper's evaluation
            configuration (|E|=20, W=0.5, delta=0.001, decay mode).
        seed: base RNG seed (tie-breaks and random restarts).
        num_trials: random initial mappings to try; ``None`` defers to
            the pipeline preset's default (paper: 5).
        num_traversals: traversals per trial, odd; ``None`` defers to
            the preset's default (paper: 3 = forward-backward-forward).
            ``1`` disables the reverse traversal (the paper's ``g_la``
            configuration).
        initial_layout: skip the layout search and route once from this
            mapping (useful for controlled experiments).
        distance: optional precomputed distance matrix for the device
            (resolved through the engine cache when omitted).
        objective: winner-selection metric for the engine path —
            ``"g_add"`` (paper default), ``"depth"``, or ``"weighted"``.
        executor: ``None`` (direct in-process search), ``"serial"``
            (engine path, in-process), or ``"process"`` (engine path,
            trials fanned across a worker pool).  A non-default
            ``objective`` implies at least the serial engine path.
        jobs: worker count for ``executor="process"``.
        pipeline: named pass-pipeline preset to execute
            (default: the paper's flow).

    Returns:
        A :class:`~repro.core.result.MappingResult`; its
        ``physical_circuit()`` is hardware-compliant and semantically
        equivalent to the input (up to the final qubit permutation
        recorded in ``final_layout``), and its ``properties`` carry the
        pipeline's per-pass timings and derived metrics.
    """
    from repro.pipeline.runner import get_pipeline

    return get_pipeline(pipeline).run(
        circuit,
        coupling,
        config=config,
        seed=seed,
        num_trials=num_trials,
        num_traversals=num_traversals,
        initial_layout=initial_layout,
        distance=distance,
        objective=objective,
        executor=executor,
        jobs=jobs,
    )
