"""One-call public API: :func:`compile_circuit`.

Ties the pipeline together the way the paper's evaluation ran it:
basis decomposition -> (optional) reverse-traversal layout search ->
SWAP-based routing -> metrics.  Everything is deterministic given
``seed``.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.decompositions import decompose_to_cx_basis
from repro.core.bidirectional import SabreLayout
from repro.core.heuristic import HeuristicConfig
from repro.core.layout import Layout
from repro.core.result import MappingResult
from repro.core.router import SabreRouter
from repro.exceptions import MappingError
from repro.hardware.coupling import CouplingGraph
from repro.hardware.distance import distance_matrix


def _needs_decomposition(circuit: QuantumCircuit) -> bool:
    """True when the circuit has gates the router cannot place directly
    (3+ qubit gates) or SWAPs that would be mistaken for routing SWAPs."""
    return any(
        (gate.num_qubits > 2 and not gate.is_directive) or gate.name == "swap"
        for gate in circuit
    )


def compile_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    config: Optional[HeuristicConfig] = None,
    seed: int = 0,
    num_trials: int = 5,
    num_traversals: int = 3,
    initial_layout: Optional[Layout] = None,
    distance: Optional[Sequence[Sequence[float]]] = None,
) -> MappingResult:
    """Map ``circuit`` onto ``coupling`` with SABRE.

    Args:
        circuit: logical circuit; 3-qubit gates and explicit SWAPs are
            decomposed into the {1q, CNOT} basis automatically.
        coupling: device coupling graph (must be connected).
        config: heuristic knobs; defaults to the paper's evaluation
            configuration (|E|=20, W=0.5, delta=0.001, decay mode).
        seed: base RNG seed (tie-breaks and random restarts).
        num_trials: random initial mappings to try (paper: 5).
        num_traversals: traversals per trial, odd (paper: 3 =
            forward-backward-forward).  ``1`` disables the reverse
            traversal (the paper's ``g_la`` configuration).
        initial_layout: skip the layout search and route once from this
            mapping (useful for controlled experiments).
        distance: optional precomputed distance matrix for the device.

    Returns:
        A :class:`~repro.core.result.MappingResult`; its
        ``physical_circuit()`` is hardware-compliant and semantically
        equivalent to the input (up to the final qubit permutation
        recorded in ``final_layout``).
    """
    coupling.require_connected()
    if circuit.num_qubits > coupling.num_qubits:
        raise MappingError(
            f"circuit {circuit.name!r} needs {circuit.num_qubits} qubits; "
            f"device {coupling.name!r} has {coupling.num_qubits}"
        )
    working = (
        decompose_to_cx_basis(circuit) if _needs_decomposition(circuit) else circuit
    )
    if distance is None:
        distance = distance_matrix(coupling)

    start = time.perf_counter()
    if initial_layout is not None:
        router = SabreRouter(
            coupling, config=config, seed=seed, distance=distance
        )
        routing = router.run(working, initial_layout=initial_layout)
        elapsed = time.perf_counter() - start
        return MappingResult(
            name=circuit.name,
            device_name=coupling.name,
            original_circuit=working,
            routing=routing,
            initial_layout=routing.initial_layout,
            final_layout=routing.final_layout,
            num_swaps=routing.num_swaps,
            runtime_seconds=elapsed,
            first_pass_swaps=None,
            trial_swaps=[routing.num_swaps],
            num_trials=1,
            num_traversals=1,
        )

    searcher = SabreLayout(
        coupling,
        config=config,
        num_traversals=num_traversals,
        num_trials=num_trials,
        seed=seed,
        distance=distance,
    )
    best = searcher.run(working)
    elapsed = time.perf_counter() - start
    return MappingResult(
        name=circuit.name,
        device_name=coupling.name,
        original_circuit=working,
        routing=best.routing,
        initial_layout=best.initial_layout,
        final_layout=best.routing.final_layout,
        num_swaps=best.num_swaps,
        runtime_seconds=elapsed,
        first_pass_swaps=best.best_first_pass_swaps,
        trial_swaps=[t.final_swaps for t in best.trials],
        num_trials=num_trials,
        num_traversals=num_traversals,
    )
