"""One-call public API: :func:`compile_circuit`.

Ties the pipeline together the way the paper's evaluation ran it:
basis decomposition -> (optional) reverse-traversal layout search ->
SWAP-based routing -> metrics.  Everything is deterministic given
``seed``.

Two execution paths share this front door:

- the **direct path** (``executor=None``): the paper's configuration —
  one :class:`~repro.core.bidirectional.SabreLayout` search whose
  random restarts run in-process;
- the **engine path** (``executor="serial"``/``"process"``): each trial
  is an independent fully seeded compilation dispatched through
  :mod:`repro.engine.trials`, ranked by a configurable ``objective``.
  ``"process"`` fans trials across a worker pool.

Either way the device's distance matrix is resolved through the engine
cache (:mod:`repro.engine.cache`), so repeated calls against one device
pay the O(N^3) Floyd-Warshall preprocessing once per process — and the
circuit is lowered into its compile-once flat IR
(:class:`~repro.circuits.flatdag.FlatDag`) through the same cache, so
repeated trials/traversals/calls against one circuit lower it once per
direction per process.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Union

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.decompositions import decompose_to_cx_basis
from repro.core.bidirectional import SabreLayout
from repro.core.heuristic import HeuristicConfig
from repro.core.layout import Layout
from repro.core.result import MappingResult
from repro.core.router import SabreRouter
from repro.core.scoring import FlatDistance
from repro.exceptions import MappingError
from repro.hardware.coupling import CouplingGraph


def _needs_decomposition(circuit: QuantumCircuit) -> bool:
    """True when the circuit has gates the router cannot place directly
    (3+ qubit gates) or SWAPs that would be mistaken for routing SWAPs."""
    return any(
        (gate.num_qubits > 2 and not gate.is_directive) or gate.name == "swap"
        for gate in circuit
    )


def compile_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    config: Optional[HeuristicConfig] = None,
    seed: int = 0,
    num_trials: int = 5,
    num_traversals: int = 3,
    initial_layout: Optional[Layout] = None,
    distance: Optional[Union[FlatDistance, Sequence[Sequence[float]]]] = None,
    objective: str = "g_add",
    executor: Optional[str] = None,
    jobs: Optional[int] = None,
) -> MappingResult:
    """Map ``circuit`` onto ``coupling`` with SABRE.

    Args:
        circuit: logical circuit; 3-qubit gates and explicit SWAPs are
            decomposed into the {1q, CNOT} basis automatically.
        coupling: device coupling graph (must be connected).
        config: heuristic knobs; defaults to the paper's evaluation
            configuration (|E|=20, W=0.5, delta=0.001, decay mode).
        seed: base RNG seed (tie-breaks and random restarts).
        num_trials: random initial mappings to try (paper: 5).
        num_traversals: traversals per trial, odd (paper: 3 =
            forward-backward-forward).  ``1`` disables the reverse
            traversal (the paper's ``g_la`` configuration).
        initial_layout: skip the layout search and route once from this
            mapping (useful for controlled experiments).
        distance: optional precomputed distance matrix for the device
            (resolved through the engine cache when omitted).
        objective: winner-selection metric for the engine path —
            ``"g_add"`` (paper default), ``"depth"``, or ``"weighted"``.
        executor: ``None`` (direct in-process search), ``"serial"``
            (engine path, in-process), or ``"process"`` (engine path,
            trials fanned across a worker pool).  A non-default
            ``objective`` implies at least the serial engine path.
        jobs: worker count for ``executor="process"``.

    Returns:
        A :class:`~repro.core.result.MappingResult`; its
        ``physical_circuit()`` is hardware-compliant and semantically
        equivalent to the input (up to the final qubit permutation
        recorded in ``final_layout``).
    """
    coupling.require_connected()
    if circuit.num_qubits > coupling.num_qubits:
        raise MappingError(
            f"circuit {circuit.name!r} needs {circuit.num_qubits} qubits; "
            f"device {coupling.name!r} has {coupling.num_qubits}"
        )
    working = (
        decompose_to_cx_basis(circuit) if _needs_decomposition(circuit) else circuit
    )
    if distance is None:
        from repro.engine.cache import get_flat_distance_matrix

        distance = get_flat_distance_matrix(coupling)

    start = time.perf_counter()
    if initial_layout is not None:
        from repro.engine.cache import get_flat_dag

        router = SabreRouter(
            coupling, config=config, seed=seed, distance=distance
        )
        routing = router.run(
            get_flat_dag(working), initial_layout=initial_layout
        )
        elapsed = time.perf_counter() - start
        return MappingResult(
            name=circuit.name,
            device_name=coupling.name,
            original_circuit=working,
            routing=routing,
            initial_layout=routing.initial_layout,
            final_layout=routing.final_layout,
            num_swaps=routing.num_swaps,
            runtime_seconds=elapsed,
            first_pass_swaps=None,
            trial_swaps=[routing.num_swaps],
            num_trials=1,
            num_traversals=1,
        )

    if executor is None and objective != "g_add" and num_trials > 1:
        # A non-default objective needs the engine's winner selection;
        # the direct path only ranks by (swaps, depth).
        executor = "serial"
    if executor is not None:
        return _compile_via_engine(
            circuit,
            working,
            coupling,
            config=config,
            seed=seed,
            num_trials=num_trials,
            num_traversals=num_traversals,
            distance=distance,
            objective=objective,
            executor=executor,
            jobs=jobs,
            start=start,
        )

    searcher = SabreLayout(
        coupling,
        config=config,
        num_traversals=num_traversals,
        num_trials=num_trials,
        seed=seed,
        distance=distance,
    )
    best = searcher.run(working)
    elapsed = time.perf_counter() - start
    return MappingResult(
        name=circuit.name,
        device_name=coupling.name,
        original_circuit=working,
        routing=best.routing,
        initial_layout=best.initial_layout,
        final_layout=best.routing.final_layout,
        num_swaps=best.num_swaps,
        runtime_seconds=elapsed,
        first_pass_swaps=best.best_first_pass_swaps,
        trial_swaps=[t.final_swaps for t in best.trials],
        num_trials=num_trials,
        num_traversals=num_traversals,
    )


def _compile_via_engine(
    circuit: QuantumCircuit,
    working: QuantumCircuit,
    coupling: CouplingGraph,
    config: Optional[HeuristicConfig],
    seed: int,
    num_trials: int,
    num_traversals: int,
    distance: Union[FlatDistance, Sequence[Sequence[float]]],
    objective: str,
    executor: str,
    jobs: Optional[int],
    start: float,
) -> MappingResult:
    """Best-of-K independently seeded trials via :mod:`repro.engine`."""
    from dataclasses import replace

    from repro.engine.trials import run_trials

    outcome = run_trials(
        working,
        coupling,
        seeds=[seed + t for t in range(num_trials)],
        config=config,
        num_traversals=num_traversals,
        objective=objective,
        executor=executor,
        jobs=jobs,
        distance=distance,
    )
    winner = outcome.best_result
    return replace(
        winner,
        name=circuit.name,
        runtime_seconds=time.perf_counter() - start,
        first_pass_swaps=min(
            (t.result.first_pass_swaps for t in outcome.trials
             if t.result.first_pass_swaps is not None),
            default=winner.first_pass_swaps,
        ),
        trial_swaps=outcome.trial_swaps,
        num_trials=num_trials,
        num_traversals=num_traversals,
    )
