"""Hardware models: coupling graphs, distances, devices, and noise.

The mapper consumes a :class:`~repro.hardware.coupling.CouplingGraph`
``G(V, E)`` (paper Table I) plus the all-pairs shortest-path distance
matrix ``D`` computed from it (paper §IV-A).  The device zoo provides
the IBM Q20 Tokyo model the paper evaluates on (Fig. 2) alongside other
real and synthetic topologies for flexibility experiments.
"""

from repro.hardware.coupling import CouplingGraph
from repro.hardware.distance import (
    floyd_warshall,
    bfs_distance_matrix,
    bfs_flat_distance,
    distance_matrix,
    weighted_floyd_warshall,
)
from repro.hardware.devices import (
    ibm_q20_tokyo,
    ibm_qx2,
    ibm_qx4,
    ibm_qx5,
    line_device,
    ring_device,
    grid_device,
    complete_device,
    star_device,
    heavy_hex_device,
    random_device,
    DEVICE_BUILDERS,
    get_device,
)
from repro.hardware.noise import NoiseModel, IBM_Q20_TOKYO_NOISE

__all__ = [
    "CouplingGraph",
    "floyd_warshall",
    "bfs_distance_matrix",
    "bfs_flat_distance",
    "distance_matrix",
    "weighted_floyd_warshall",
    "ibm_q20_tokyo",
    "ibm_qx2",
    "ibm_qx4",
    "ibm_qx5",
    "line_device",
    "ring_device",
    "grid_device",
    "complete_device",
    "star_device",
    "heavy_hex_device",
    "random_device",
    "DEVICE_BUILDERS",
    "get_device",
    "NoiseModel",
    "IBM_Q20_TOKYO_NOISE",
]
