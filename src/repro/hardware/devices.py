"""Device zoo: real IBM chips and synthetic topologies.

The centrepiece is :func:`ibm_q20_tokyo`, the exact 20-qubit coupling
graph of IBM's Q20 "Tokyo" chip from paper Fig. 2 — the hardware model
for every experiment in the paper's evaluation.  The remaining builders
exercise the *flexibility* objective (§III-B: "Our algorithm should be
able to deal with arbitrary symmetric coupling cases"): earlier IBM
chips (directed couplings, used by the directed-coupling extension),
ideal 1D/2D lattices (the models earlier heuristics were limited to),
and random connected graphs for property-based testing.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import HardwareError
from repro.hardware.coupling import CouplingGraph

Edge = Tuple[int, int]


def ibm_q20_tokyo() -> CouplingGraph:
    """IBM Q20 Tokyo (paper Fig. 2): 20 qubits, 43 symmetric couplings.

    Laid out as a 4 x 5 grid (rows 0-4 / 5-9 / 10-14 / 15-19) with
    nearest-neighbour links plus the twelve diagonal couplers shown in
    the figure.  All couplings support CNOT in both directions.
    """
    horizontal = [
        (0, 1), (1, 2), (2, 3), (3, 4),
        (5, 6), (6, 7), (7, 8), (8, 9),
        (10, 11), (11, 12), (12, 13), (13, 14),
        (15, 16), (16, 17), (17, 18), (18, 19),
    ]
    vertical = [
        (0, 5), (1, 6), (2, 7), (3, 8), (4, 9),
        (5, 10), (6, 11), (7, 12), (8, 13), (9, 14),
        (10, 15), (11, 16), (12, 17), (13, 18), (14, 19),
    ]
    diagonal = [
        (1, 7), (2, 6), (3, 9), (4, 8),
        (5, 11), (6, 10), (7, 13), (8, 12),
        (11, 17), (12, 16), (13, 19), (14, 18),
    ]
    return CouplingGraph(
        20, horizontal + vertical + diagonal, name="ibm_q20_tokyo"
    )


def ibm_qx2() -> CouplingGraph:
    """IBM QX2 "Sparrow": 5 qubits in a bow-tie, *directed* couplings.

    Control -> target directions as published; used by the
    directed-coupling extension (§III-A "Other Methods").
    """
    directed = [(0, 1), (0, 2), (1, 2), (3, 2), (3, 4), (4, 2)]
    undirected = [tuple(sorted(e)) for e in directed]
    return CouplingGraph(5, undirected, directed_edges=directed, name="ibm_qx2")


def ibm_qx4() -> CouplingGraph:
    """IBM QX4 "Raven": 5-qubit bow-tie with reversed directions."""
    directed = [(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (2, 4)]
    undirected = [tuple(sorted(e)) for e in directed]
    return CouplingGraph(5, undirected, directed_edges=directed, name="ibm_qx4")


def ibm_qx5() -> CouplingGraph:
    """IBM QX5 "Albatross": 16 qubits in a 2 x 8 directed ladder."""
    directed = [
        (1, 0), (1, 2), (2, 3), (3, 4), (3, 14), (5, 4), (6, 5), (6, 7),
        (6, 11), (7, 10), (8, 7), (9, 8), (9, 10), (11, 10), (12, 5),
        (12, 11), (12, 13), (13, 4), (13, 14), (15, 0), (15, 2), (15, 14),
    ]
    undirected = [tuple(sorted(e)) for e in directed]
    return CouplingGraph(16, undirected, directed_edges=directed, name="ibm_qx5")


def line_device(num_qubits: int) -> CouplingGraph:
    """1D nearest-neighbour chain — the classic LNN model (§VII)."""
    if num_qubits < 1:
        raise HardwareError("line device needs at least 1 qubit")
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    return CouplingGraph(num_qubits, edges, name=f"line_{num_qubits}")


def ring_device(num_qubits: int) -> CouplingGraph:
    """Cycle of ``num_qubits`` qubits (used in the paper's Fig. 3 example
    as the 4-qubit device where {Q1,Q2,Q4,Q3} form a square)."""
    if num_qubits < 3:
        raise HardwareError("ring device needs at least 3 qubits")
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return CouplingGraph(num_qubits, edges, name=f"ring_{num_qubits}")


def grid_device(rows: int, cols: int) -> CouplingGraph:
    """2D nearest-neighbour lattice — the paper's Fig. 6/7 9-qubit
    examples use ``grid_device(3, 3)``."""
    if rows < 1 or cols < 1:
        raise HardwareError("grid dimensions must be positive")
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return CouplingGraph(rows * cols, edges, name=f"grid_{rows}x{cols}")


def complete_device(num_qubits: int) -> CouplingGraph:
    """All-to-all coupling (ion-trap-like); routing is trivially SWAP-free.

    Useful as a control: any mapper must insert zero SWAPs here.
    """
    if num_qubits < 1:
        raise HardwareError("complete device needs at least 1 qubit")
    edges = [
        (i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)
    ]
    return CouplingGraph(num_qubits, edges, name=f"complete_{num_qubits}")


def star_device(num_qubits: int) -> CouplingGraph:
    """Hub-and-spoke topology: qubit 0 couples to all others.

    A worst case for SWAP parallelism — every route crosses the hub —
    used in trade-off and ablation tests.
    """
    if num_qubits < 2:
        raise HardwareError("star device needs at least 2 qubits")
    edges = [(0, i) for i in range(1, num_qubits)]
    return CouplingGraph(num_qubits, edges, name=f"star_{num_qubits}")


def heavy_hex_device(distance: int = 3) -> CouplingGraph:
    """Simplified heavy-hexagon lattice (modern IBM topology).

    A ``distance x distance`` grid of unit hexagon cells approximated by
    degree-<=3 rows of data qubits joined through bridge qubits.  Not a
    chip-exact layout — it exists to exercise low-degree irregular
    graphs, the regime the paper's *flexibility* objective targets.
    """
    if distance < 2:
        raise HardwareError("heavy-hex distance must be >= 2")
    rows = distance
    row_len = 2 * distance + 1
    edges: List[Edge] = []
    num = 0
    row_ids: List[List[int]] = []
    for _ in range(rows):
        ids = list(range(num, num + row_len))
        num += row_len
        row_ids.append(ids)
        edges.extend((ids[i], ids[i + 1]) for i in range(row_len - 1))
    bridges_per_gap = distance + 1
    for r in range(rows - 1):
        for k in range(bridges_per_gap):
            col = min(2 * k, row_len - 1)
            bridge = num
            num += 1
            edges.append((row_ids[r][col], bridge))
            edges.append((bridge, row_ids[r + 1][col]))
    return CouplingGraph(num, edges, name=f"heavy_hex_d{distance}")


def random_device(
    num_qubits: int, extra_edge_fraction: float = 0.3, seed: int = 0
) -> CouplingGraph:
    """Random connected device: a random spanning tree plus extra edges.

    Deterministic in ``seed``.  ``extra_edge_fraction`` scales how many
    non-tree edges are added (as a fraction of ``num_qubits``).
    Guaranteed connected, which is all the router requires.
    """
    if num_qubits < 2:
        raise HardwareError("random device needs at least 2 qubits")
    rng = random.Random(seed)
    order = list(range(num_qubits))
    rng.shuffle(order)
    edges = set()
    for i in range(1, num_qubits):
        attach = rng.choice(order[:i])
        edges.add(tuple(sorted((order[i], attach))))
    num_extra = int(extra_edge_fraction * num_qubits)
    attempts = 0
    while num_extra > 0 and attempts < 50 * num_qubits:
        a, b = rng.sample(range(num_qubits), 2)
        edge = tuple(sorted((a, b)))
        attempts += 1
        if edge not in edges:
            edges.add(edge)
            num_extra -= 1
    return CouplingGraph(
        num_qubits, sorted(edges), name=f"random_{num_qubits}_s{seed}"
    )


#: Named builders for CLI/benchmark lookup.
DEVICE_BUILDERS: Dict[str, Callable[..., CouplingGraph]] = {
    "ibm_q20_tokyo": ibm_q20_tokyo,
    "ibm_qx2": ibm_qx2,
    "ibm_qx4": ibm_qx4,
    "ibm_qx5": ibm_qx5,
}


def get_device(name: str) -> CouplingGraph:
    """Look up a named device (see :data:`DEVICE_BUILDERS`)."""
    try:
        return DEVICE_BUILDERS[name]()
    except KeyError:
        raise HardwareError(
            f"unknown device {name!r}; available: {sorted(DEVICE_BUILDERS)}"
        ) from None


#: Lazily built catalog rows — the registry is static, and diameter()
#: runs an all-pairs BFS per device, so a polled GET /devices must not
#: rebuild every chip per request.  ``None`` until first use; built
#: into a local and assigned in one step so concurrent first callers
#: (the service runs on ThreadingHTTPServer) can at worst duplicate
#: the build, never corrupt or partially expose it.
_CATALOG: Optional[List[Dict[str, object]]] = None


def device_catalog() -> List[Dict[str, object]]:
    """Structured listing of the registry, one JSON-safe row per device.

    The single source of truth behind both ``repro devices`` (CLI) and
    the service's ``GET /devices`` endpoint, so the two surfaces can
    never drift apart.  Built once per process; returns fresh row
    copies so callers may annotate them freely.
    """
    global _CATALOG
    if _CATALOG is None:
        _CATALOG = [
            {
                "name": name,
                "qubits": device.num_qubits,
                "edges": device.num_edges,
                "directed": not device.is_symmetric,
                "diameter": device.diameter(),
            }
            for name, device in (
                (n, get_device(n)) for n in sorted(DEVICE_BUILDERS)
            )
        ]
    return [dict(row) for row in _CATALOG]
