"""All-pairs shortest paths and the distance matrix ``D`` (paper §IV-A).

The paper's preprocessing computes ``D`` with the Floyd-Warshall
algorithm: "Each edge in the coupling graph has distance 1 because one
SWAP is required to exchange the two qubits of an edge.  So that
D[i][j] represents the minimum number of SWAPs required to move a
logical qubit from physical qubit Qi to Qj.  The complexity of this
step is O(N^3)".

We implement Floyd-Warshall exactly as described, plus a BFS-based
APSP (``O(N * E)``, faster on the sparse graphs real devices have) that
must agree with it — the agreement is itself a test invariant, and it
is what lets :class:`~repro.core.router.SabreRouter` default to the BFS
matrix when no precomputed matrix is passed.  The weighted variant
supports the noise-aware routing extension, where an edge's length
reflects its two-qubit error rate instead of 1.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.exceptions import HardwareError
from repro.hardware.coupling import CouplingGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (type only)
    from repro.core.scoring import FlatDistance

#: Distance reported between disconnected qubits.
INFINITY = float("inf")

#: Template for flat buffers (multiplied out to n*n in one allocation).
_INF_TEMPLATE = array("d", [INFINITY])


def floyd_warshall(graph: CouplingGraph) -> List[List[float]]:
    """Unit-weight Floyd-Warshall, exactly the paper's preprocessing step.

    Returns an ``N x N`` matrix of floats; ``INFINITY`` marks pairs with
    no connecting path (disconnected devices are rejected by the
    compiler, but the matrix itself stays well-defined).
    """
    n = graph.num_qubits
    dist = [[INFINITY] * n for _ in range(n)]
    for i in range(n):
        dist[i][i] = 0.0
    for a, b in graph.edges:
        dist[a][b] = 1.0
        dist[b][a] = 1.0
    for k in range(n):
        dist_k = dist[k]
        for i in range(n):
            dist_i = dist[i]
            via = dist_i[k]
            if via == INFINITY:
                continue
            for j in range(n):
                candidate = via + dist_k[j]
                if candidate < dist_i[j]:
                    dist_i[j] = candidate
    return dist


def bfs_distance_matrix(graph: CouplingGraph) -> List[List[float]]:
    """APSP by one BFS per vertex; must equal :func:`floyd_warshall`.

    ``O(N * (N + E))`` — preferred for large sparse devices.  Kept as an
    independent implementation so the two can cross-check each other in
    property tests.

    Level-synchronous frontier-list implementation: two plain lists are
    swapped per distance level instead of running a deque (with its
    per-element popleft overhead) and re-materialising the sorted
    neighbor list of every vertex once per source.
    """
    n = graph.num_qubits
    adjacency = [graph.neighbors(q) for q in range(n)]
    matrix: List[List[float]] = []
    for source in range(n):
        row = [INFINITY] * n
        row[source] = 0.0
        frontier = [source]
        level = 0.0
        while frontier:
            level += 1.0
            nxt: List[int] = []
            for q in frontier:
                for nb in adjacency[q]:
                    if row[nb] == INFINITY:
                        row[nb] = level
                        nxt.append(nb)
            frontier = nxt
        matrix.append(row)
    return matrix


def bfs_flat_distance(graph: CouplingGraph) -> "FlatDistance":
    """BFS APSP written straight into one flat row-major buffer.

    Produces the :class:`~repro.core.scoring.FlatDistance` the router
    consumes without ever materialising the nested list-of-lists form —
    on a large device the per-row lists and the ``from_matrix`` re-copy
    were a measurable cold-start tax.  Always agrees with
    :func:`bfs_distance_matrix` entry-for-entry (a test invariant), and
    is marked symmetric by construction (unit-weight undirected BFS).
    """
    from repro.core.scoring import FlatDistance

    n = graph.num_qubits
    adjacency = [graph.neighbors(q) for q in range(n)]
    buf = _INF_TEMPLATE * (n * n)
    for source in range(n):
        base = source * n
        buf[base + source] = 0.0
        frontier = [source]
        level = 0.0
        while frontier:
            level += 1.0
            nxt: List[int] = []
            for q in frontier:
                for nb in adjacency[q]:
                    if buf[base + nb] == INFINITY:
                        buf[base + nb] = level
                        nxt.append(nb)
            frontier = nxt
    return FlatDistance(n, buf, symmetric=True)


def distance_matrix(
    graph: CouplingGraph, method: str = "floyd-warshall"
) -> List[List[float]]:
    """The paper's ``D[][]``: minimum SWAPs to move a qubit from Qi to Qj.

    Args:
        graph: device coupling graph.
        method: ``"floyd-warshall"`` (paper's choice) or ``"bfs"``.
    """
    if method == "floyd-warshall":
        return floyd_warshall(graph)
    if method == "bfs":
        return bfs_distance_matrix(graph)
    raise HardwareError(f"unknown distance method {method!r}")


def weighted_floyd_warshall(
    graph: CouplingGraph, edge_weights: Dict[Tuple[int, int], float]
) -> List[List[float]]:
    """Floyd-Warshall with per-edge weights (noise-aware extension).

    ``edge_weights`` maps undirected edges ``(low, high)`` to positive
    lengths — e.g. ``-3 * log(1 - error_rate)`` so that the "distance"
    between qubits approximates the log-infidelity of SWAPping along the
    best path.  Missing edges default to weight 1.0.
    """
    for (a, b), w in edge_weights.items():
        if w <= 0:
            raise HardwareError(
                f"edge weight for ({a}, {b}) must be positive, got {w}"
            )
    n = graph.num_qubits
    dist = [[INFINITY] * n for _ in range(n)]
    for i in range(n):
        dist[i][i] = 0.0
    for a, b in graph.edges:
        w = edge_weights.get((min(a, b), max(a, b)), 1.0)
        dist[a][b] = w
        dist[b][a] = w
    for k in range(n):
        dist_k = dist[k]
        for i in range(n):
            dist_i = dist[i]
            via = dist_i[k]
            if via == INFINITY:
                continue
            for j in range(n):
                candidate = via + dist_k[j]
                if candidate < dist_i[j]:
                    dist_i[j] = candidate
    return dist
