"""All-pairs shortest paths and the distance matrix ``D`` (paper §IV-A).

The paper's preprocessing computes ``D`` with the Floyd-Warshall
algorithm: "Each edge in the coupling graph has distance 1 because one
SWAP is required to exchange the two qubits of an edge.  So that
D[i][j] represents the minimum number of SWAPs required to move a
logical qubit from physical qubit Qi to Qj.  The complexity of this
step is O(N^3)".

We implement Floyd-Warshall exactly as described, plus a BFS-based
APSP (``O(N * E)``, faster on the sparse graphs real devices have) that
must agree with it — the agreement is itself a test invariant, and it
is what lets :class:`~repro.core.router.SabreRouter` default to the BFS
matrix when no precomputed matrix is passed.  The weighted variant
supports the noise-aware routing extension, where an edge's length
reflects its two-qubit error rate instead of 1.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.exceptions import HardwareError
from repro.hardware.coupling import CouplingGraph

#: Distance reported between disconnected qubits.
INFINITY = float("inf")


def floyd_warshall(graph: CouplingGraph) -> List[List[float]]:
    """Unit-weight Floyd-Warshall, exactly the paper's preprocessing step.

    Returns an ``N x N`` matrix of floats; ``INFINITY`` marks pairs with
    no connecting path (disconnected devices are rejected by the
    compiler, but the matrix itself stays well-defined).
    """
    n = graph.num_qubits
    dist = [[INFINITY] * n for _ in range(n)]
    for i in range(n):
        dist[i][i] = 0.0
    for a, b in graph.edges:
        dist[a][b] = 1.0
        dist[b][a] = 1.0
    for k in range(n):
        dist_k = dist[k]
        for i in range(n):
            dist_i = dist[i]
            via = dist_i[k]
            if via == INFINITY:
                continue
            for j in range(n):
                candidate = via + dist_k[j]
                if candidate < dist_i[j]:
                    dist_i[j] = candidate
    return dist


def bfs_distance_matrix(graph: CouplingGraph) -> List[List[float]]:
    """APSP by one BFS per vertex; must equal :func:`floyd_warshall`.

    ``O(N * (N + E))`` — preferred for large sparse devices.  Kept as an
    independent implementation so the two can cross-check each other in
    property tests.
    """
    n = graph.num_qubits
    matrix: List[List[float]] = []
    for source in range(n):
        row = [INFINITY] * n
        row[source] = 0.0
        queue = deque([source])
        while queue:
            q = queue.popleft()
            for nb in graph.neighbors(q):
                if row[nb] == INFINITY:
                    row[nb] = row[q] + 1.0
                    queue.append(nb)
        matrix.append(row)
    return matrix


def distance_matrix(
    graph: CouplingGraph, method: str = "floyd-warshall"
) -> List[List[float]]:
    """The paper's ``D[][]``: minimum SWAPs to move a qubit from Qi to Qj.

    Args:
        graph: device coupling graph.
        method: ``"floyd-warshall"`` (paper's choice) or ``"bfs"``.
    """
    if method == "floyd-warshall":
        return floyd_warshall(graph)
    if method == "bfs":
        return bfs_distance_matrix(graph)
    raise HardwareError(f"unknown distance method {method!r}")


def weighted_floyd_warshall(
    graph: CouplingGraph, edge_weights: Dict[Tuple[int, int], float]
) -> List[List[float]]:
    """Floyd-Warshall with per-edge weights (noise-aware extension).

    ``edge_weights`` maps undirected edges ``(low, high)`` to positive
    lengths — e.g. ``-3 * log(1 - error_rate)`` so that the "distance"
    between qubits approximates the log-infidelity of SWAPping along the
    best path.  Missing edges default to weight 1.0.
    """
    for (a, b), w in edge_weights.items():
        if w <= 0:
            raise HardwareError(
                f"edge weight for ({a}, {b}) must be positive, got {w}"
            )
    n = graph.num_qubits
    dist = [[INFINITY] * n for _ in range(n)]
    for i in range(n):
        dist[i][i] = 0.0
    for a, b in graph.edges:
        w = edge_weights.get((min(a, b), max(a, b)), 1.0)
        dist[a][b] = w
        dist[b][a] = w
    for k in range(n):
        dist_k = dist[k]
        for i in range(n):
            dist_i = dist[i]
            via = dist_i[k]
            if via == INFINITY:
                continue
            for j in range(n):
                candidate = via + dist_k[j]
                if candidate < dist_i[j]:
                    dist_i[j] = candidate
    return dist
