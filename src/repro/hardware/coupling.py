"""Device coupling graphs (paper Table I: ``G(V, E)``).

A coupling graph has one vertex per physical qubit and an edge wherever
the hardware supports a two-qubit gate between two qubits.  The paper
targets IBM's Q20 Tokyo, whose couplings are *symmetric* (CNOT allowed
in both directions, §III-A); we model symmetric graphs natively and
also carry an optional direction set so the directed-coupling extension
(older QX2/QX4/QX5-style chips) can reuse the same class.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import HardwareError

Edge = Tuple[int, int]


class CouplingGraph:
    """Undirected (optionally direction-annotated) coupling graph.

    Args:
        num_qubits: number of physical qubits ``N``.
        edges: iterable of qubit pairs that support two-qubit gates.
            Pairs are stored undirected; duplicates and reversed
            duplicates collapse.
        directed_edges: optional iterable of *ordered* pairs giving the
            allowed CNOT directions.  ``None`` (the default) means fully
            symmetric — every stored edge works both ways, as on the
            Q20 Tokyo chip.
        name: human-readable device name.
    """

    def __init__(
        self,
        num_qubits: int,
        edges: Iterable[Edge],
        directed_edges: Optional[Iterable[Edge]] = None,
        name: str = "device",
    ) -> None:
        if num_qubits <= 0:
            raise HardwareError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = num_qubits
        self.name = name
        self._adjacency: List[Set[int]] = [set() for _ in range(num_qubits)]
        self._edges: Set[FrozenSet[int]] = set()
        for a, b in edges:
            self._check_qubit(a)
            self._check_qubit(b)
            if a == b:
                raise HardwareError(f"self-loop edge ({a}, {b}) is not allowed")
            self._edges.add(frozenset((a, b)))
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
        self._directed: Optional[Set[Edge]] = None
        if directed_edges is not None:
            self._directed = set()
            for a, b in directed_edges:
                if frozenset((a, b)) not in self._edges:
                    raise HardwareError(
                        f"directed edge ({a}, {b}) has no underlying coupling"
                    )
                self._directed.add((a, b))

    def _check_qubit(self, q: int) -> None:
        if not 0 <= q < self.num_qubits:
            raise HardwareError(
                f"qubit {q} out of range for device with {self.num_qubits} qubits"
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def edges(self) -> List[Edge]:
        """Sorted list of undirected edges as ``(low, high)`` tuples."""
        return sorted(tuple(sorted(e)) for e in self._edges)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def is_symmetric(self) -> bool:
        """True when CNOTs run in both directions on every edge."""
        if self._directed is None:
            return True
        return all(
            (a, b) in self._directed and (b, a) in self._directed
            for a, b in self.edges
        )

    def neighbors(self, q: int) -> List[int]:
        """Physical qubits directly coupled to ``q`` (sorted)."""
        self._check_qubit(q)
        return sorted(self._adjacency[q])

    def degree(self, q: int) -> int:
        self._check_qubit(q)
        return len(self._adjacency[q])

    def are_coupled(self, a: int, b: int) -> bool:
        """True when a two-qubit gate may act on ``{a, b}`` (either order)."""
        self._check_qubit(a)
        self._check_qubit(b)
        return b in self._adjacency[a]

    def allows_cnot(self, control: int, target: int) -> bool:
        """True when a CNOT with this exact direction is native.

        On symmetric devices this equals :meth:`are_coupled`; on directed
        devices the direction set decides (the directed-coupling
        extension inserts H-conjugation when only the reverse exists).
        """
        if not self.are_coupled(control, target):
            return False
        if self._directed is None:
            return True
        return (control, target) in self._directed

    # ------------------------------------------------------------------
    # Graph algorithms
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """True when every qubit is reachable from qubit 0."""
        if self.num_qubits == 1:
            return True
        seen = {0}
        queue = deque([0])
        while queue:
            q = queue.popleft()
            for nb in self._adjacency[q]:
                if nb not in seen:
                    seen.add(nb)
                    queue.append(nb)
        return len(seen) == self.num_qubits

    def require_connected(self) -> None:
        """Raise :class:`HardwareError` unless the graph is connected.

        Routing between disconnected components is impossible, so the
        compiler front door calls this once per device.
        """
        if not self.is_connected():
            raise HardwareError(
                f"coupling graph {self.name!r} is disconnected; "
                "qubit routing requires a connected device"
            )

    def shortest_path(self, source: int, target: int) -> List[int]:
        """One BFS shortest path from ``source`` to ``target`` (inclusive).

        Used by the trivial router baseline and the Bridge extension.
        """
        self._check_qubit(source)
        self._check_qubit(target)
        if source == target:
            return [source]
        parent: Dict[int, int] = {source: source}
        queue = deque([source])
        while queue:
            q = queue.popleft()
            for nb in sorted(self._adjacency[q]):
                if nb not in parent:
                    parent[nb] = q
                    if nb == target:
                        path = [target]
                        while path[-1] != source:
                            path.append(parent[path[-1]])
                        return list(reversed(path))
                    queue.append(nb)
        raise HardwareError(
            f"no path between physical qubits {source} and {target}"
        )

    def diameter(self) -> int:
        """Longest shortest-path distance (the paper's O(sqrt N) bound
        on SWAPs per gate refers to this for 2D layouts)."""
        from repro.hardware.distance import bfs_distance_matrix

        self.require_connected()
        matrix = bfs_distance_matrix(self)
        return int(max(max(row) for row in matrix))

    def subgraph_degree_sequence(self) -> List[int]:
        """Sorted degree sequence; used by layout heuristics and tests."""
        return sorted(len(adj) for adj in self._adjacency)

    def __repr__(self) -> str:
        return (
            f"CouplingGraph(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"num_edges={self.num_edges})"
        )
