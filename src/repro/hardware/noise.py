"""Average-error noise model and fidelity estimation (paper Fig. 2).

The paper motivates gate-count and depth minimisation with the Q20
Tokyo's measured averages (Fig. 2): single-qubit gate error 4.43e-3,
CNOT error 3.00e-2, measurement error 8.74e-2, T1 = 87.29 us,
T2 = 54.43 us.  This module turns those numbers into an estimated
success probability for a routed circuit, so benchmarks can report the
*fidelity impact* of additional SWAPs, not just raw counts.

The model is deliberately the paper's: chip-average error rates with an
optional per-edge override table used by the noise-aware routing
extension (§VI "More Precise Hardware Modeling" / Tannu & Qureshi).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.depth import circuit_depth
from repro.exceptions import HardwareError


@dataclass(frozen=True)
class NoiseModel:
    """Chip-average error and coherence parameters.

    Attributes:
        single_qubit_error: depolarising error per 1q gate.
        two_qubit_error: error per CNOT (a SWAP costs three of these).
        measurement_error: readout error per measured qubit.
        t1_us / t2_us: relaxation / dephasing times in microseconds.
        gate_time_1q_ns / gate_time_2q_ns: typical gate durations
            (superconducting-circuit scale; the paper gives coherence
            times but not durations, so we default to the standard
            ~50 ns / ~300 ns figures for that hardware generation).
        edge_errors: optional per-coupling CNOT error overrides keyed by
            undirected edge ``(low, high)``.
    """

    single_qubit_error: float = 4.43e-3
    two_qubit_error: float = 3.00e-2
    measurement_error: float = 8.74e-2
    t1_us: float = 87.29
    t2_us: float = 54.43
    gate_time_1q_ns: float = 50.0
    gate_time_2q_ns: float = 300.0
    edge_errors: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label, rate in (
            ("single_qubit_error", self.single_qubit_error),
            ("two_qubit_error", self.two_qubit_error),
            ("measurement_error", self.measurement_error),
        ):
            if not 0.0 <= rate < 1.0:
                raise HardwareError(f"{label} must be in [0, 1), got {rate}")

    def edge_error(self, a: int, b: int) -> float:
        """CNOT error rate on coupling ``{a, b}`` (override or average)."""
        return self.edge_errors.get((min(a, b), max(a, b)), self.two_qubit_error)

    # ------------------------------------------------------------------
    # Fidelity estimation
    # ------------------------------------------------------------------

    def gate_success_probability(self, circuit: QuantumCircuit) -> float:
        """Product of per-gate success probabilities.

        Two-qubit gates use the edge override when the circuit is
        expressed on physical qubits; directives other than ``measure``
        are free.  This is the paper's "overall error rate will
        increase [with] the number of operations" made quantitative.
        """
        log_success = 0.0
        for gate in circuit:
            if gate.name == "measure":
                log_success += math.log1p(-self.measurement_error)
            elif gate.is_directive:
                continue
            elif gate.num_qubits == 1:
                log_success += math.log1p(-self.single_qubit_error)
            elif gate.num_qubits == 2:
                a, b = gate.qubits
                log_success += math.log1p(-self.edge_error(a, b))
            else:
                # 3q gates cost their 6-CNOT decomposition.
                log_success += 6 * math.log1p(-self.two_qubit_error)
                log_success += 9 * math.log1p(-self.single_qubit_error)
        return math.exp(log_success)

    def decoherence_factor(self, circuit: QuantumCircuit) -> float:
        """Coherence survival over the circuit's scheduled duration.

        Execution time is estimated as depth x (2q gate time) — the
        conservative choice since routed circuits are CNOT-dominated —
        and each active qubit decays with the harmonic-mean lifetime of
        T1 and T2.  This is the "limited qubit lifetime" limitation the
        depth metric guards (§II-B).
        """
        depth = circuit_depth(circuit)
        duration_us = depth * self.gate_time_2q_ns / 1000.0
        rate = 1.0 / self.t1_us + 1.0 / self.t2_us
        num_active = len(circuit.used_qubits())
        return math.exp(-duration_us * rate * max(num_active, 1) / 2.0)

    def estimated_success_probability(self, circuit: QuantumCircuit) -> float:
        """Combined gate-error and decoherence success estimate in [0, 1]."""
        return self.gate_success_probability(circuit) * self.decoherence_factor(
            circuit
        )


#: The paper's Fig. 2 chip-average parameters.
IBM_Q20_TOKYO_NOISE = NoiseModel()
