"""Verification of routed circuits.

Routing must preserve semantics while making every two-qubit gate
hardware-executable.  Three independent checks:

- :mod:`repro.verify.compliance` — every two-qubit gate of the output
  acts on a coupled physical pair (the constraint the mapper exists to
  satisfy, paper §III-A).
- :mod:`repro.verify.equivalence` — structural equivalence: replaying
  the routed circuit through its evolving layout recovers exactly the
  original logical circuit (as a partial order of gates).
- :mod:`repro.verify.statevector` — a dense numpy state-vector
  simulator providing unitary-level equivalence for small circuits.
"""

from repro.verify.compliance import (
    compliance_violations,
    is_hardware_compliant,
    assert_compliant,
)
from repro.verify.equivalence import (
    extract_logical_circuit,
    wires_signature,
    structurally_equivalent,
    assert_equivalent,
)
from repro.verify.statevector import (
    Statevector,
    simulate,
    statevector_equivalent,
    routed_statevector_equivalent,
)

__all__ = [
    "compliance_violations",
    "is_hardware_compliant",
    "assert_compliant",
    "extract_logical_circuit",
    "wires_signature",
    "structurally_equivalent",
    "assert_equivalent",
    "Statevector",
    "simulate",
    "statevector_equivalent",
    "routed_statevector_equivalent",
]
