"""Hardware-compliance checking (the mapper's defining constraint).

A circuit is hardware-compliant for a device when every two-qubit gate
acts on a physically coupled pair (paper §III-A: "two-qubit gates can
only be applied to limited logical qubit pairs, whose corresponding
physical qubit pairs support direct coupling").
"""

from __future__ import annotations

from typing import List, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.exceptions import VerificationError
from repro.hardware.coupling import CouplingGraph


def compliance_violations(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    check_direction: bool = False,
) -> List[Tuple[int, Gate]]:
    """All gates violating the device's coupling constraints.

    Args:
        circuit: circuit on *physical* wires.
        coupling: the device.
        check_direction: additionally require native CNOT direction
            (meaningful only for directed devices like IBM QX5; the
            paper's Q20 Tokyo is fully symmetric).

    Returns:
        ``(position, gate)`` pairs, empty when compliant.  Gates with
        three or more qubits are always violations (NISQ hardware has no
        native 3-qubit gates).
    """
    violations: List[Tuple[int, Gate]] = []
    for position, gate in enumerate(circuit):
        if gate.is_directive:
            continue
        if gate.num_qubits == 1:
            continue
        if gate.num_qubits > 2:
            violations.append((position, gate))
            continue
        a, b = gate.qubits
        if not coupling.are_coupled(a, b):
            violations.append((position, gate))
        elif check_direction and gate.name == "cx" and not coupling.allows_cnot(a, b):
            violations.append((position, gate))
    return violations


def is_hardware_compliant(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    check_direction: bool = False,
) -> bool:
    """True when :func:`compliance_violations` finds nothing."""
    return not compliance_violations(circuit, coupling, check_direction)


def assert_compliant(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    check_direction: bool = False,
) -> None:
    """Raise :class:`VerificationError` listing any violations."""
    violations = compliance_violations(circuit, coupling, check_direction)
    if violations:
        shown = ", ".join(f"#{pos}:{gate}" for pos, gate in violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        raise VerificationError(
            f"circuit {circuit.name!r} has {len(violations)} coupling "
            f"violation(s) on device {coupling.name!r}: {shown}{more}"
        )
