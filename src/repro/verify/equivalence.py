"""Structural equivalence of routed and original circuits.

Replaying the routed circuit while tracking the evolving layout should
recover the original logical circuit exactly — same gates, same
per-qubit order.  Two circuits whose per-wire gate sequences agree are
equal as Mazurkiewicz traces (each can be turned into the other by
swapping adjacent gates on disjoint qubits), hence implement the same
unitary.  This gives an exact equivalence check that scales to the
paper's largest benchmarks (35k gates), unlike simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.layout import Layout
from repro.exceptions import VerificationError

#: A gate's identity for trace comparison: name, params, logical operands.
GateKey = Tuple[str, Tuple[float, ...], Tuple[int, ...]]


def extract_logical_circuit(
    routed: QuantumCircuit,
    initial_layout: Layout,
    num_logical: int,
    swap_positions: Optional[Sequence[int]] = None,
) -> QuantumCircuit:
    """Undo the routing: map a physical circuit back to logical wires.

    Walks the routed circuit with the layout that was current at each
    gate.  Router-inserted SWAPs (identified by ``swap_positions`` or,
    if omitted, by gate name ``swap``) update the layout and are
    dropped; every other gate is translated back to the logical qubits
    occupying its physical operands.

    Args:
        routed: circuit on physical wires (SWAPs *not* decomposed).
        initial_layout: mapping in force before the first gate.
        num_logical: wire count of the original circuit.
        swap_positions: positions of router-inserted SWAPs; pass this
            when the original circuit itself contained SWAP gates.

    Raises:
        VerificationError: when a non-inserted gate touches a physical
            qubit holding a padding ancilla (impossible for a correct
            routing).
    """
    layout = initial_layout.copy()
    swap_set = None if swap_positions is None else set(swap_positions)
    logical = QuantumCircuit(
        num_logical, f"{routed.name}_extracted", routed.num_clbits
    )
    p2l = layout.p2l
    for position, gate in enumerate(routed):
        inserted = (
            gate.name == "swap"
            if swap_set is None
            else position in swap_set
        )
        if inserted:
            layout.swap_physical(*gate.qubits)
            continue
        operands = tuple(p2l[p] for p in gate.qubits)
        for q in operands:
            if q >= num_logical:
                raise VerificationError(
                    f"routed gate #{position} ({gate}) acts on padding "
                    f"ancilla {q}; routing is corrupt"
                )
        logical.append(gate.remapped(p2l))
    return logical


def wires_signature(circuit: QuantumCircuit) -> Dict[int, List[GateKey]]:
    """Per-wire sequence of gate identities (the trace-monoid signature).

    Directives are included — a routed circuit must preserve measures
    and barriers too.
    """
    signature: Dict[int, List[GateKey]] = {
        q: [] for q in range(circuit.num_qubits)
    }
    for gate in circuit:
        key: GateKey = (gate.name, gate.params, gate.qubits)
        for q in gate.qubits:
            signature[q].append(key)
    return signature


def structurally_equivalent(a: QuantumCircuit, b: QuantumCircuit) -> bool:
    """True when the circuits are equal up to commuting disjoint gates."""
    if a.num_qubits != b.num_qubits:
        return False
    return wires_signature(a) == wires_signature(b)


def assert_equivalent(
    original: QuantumCircuit,
    routed: QuantumCircuit,
    initial_layout: Layout,
    swap_positions: Optional[Sequence[int]] = None,
) -> None:
    """Verify that ``routed`` implements ``original`` exactly.

    Extracts the logical circuit back out of the routed one and compares
    per-wire signatures, reporting the first divergent wire on failure.
    """
    extracted = extract_logical_circuit(
        routed, initial_layout, original.num_qubits, swap_positions
    )
    sig_original = wires_signature(original)
    sig_extracted = wires_signature(extracted)
    if sig_original == sig_extracted:
        return
    for wire in range(original.num_qubits):
        seq_o = sig_original.get(wire, [])
        seq_e = sig_extracted.get(wire, [])
        if seq_o != seq_e:
            for i, (go, ge) in enumerate(zip(seq_o, seq_e)):
                if go != ge:
                    raise VerificationError(
                        f"wire {wire} diverges at gate {i}: "
                        f"original {go} vs routed {ge}"
                    )
            raise VerificationError(
                f"wire {wire} length mismatch: original has {len(seq_o)} "
                f"gate(s), routed has {len(seq_e)}"
            )
    raise VerificationError("circuits differ (unlocalised signature mismatch)")
