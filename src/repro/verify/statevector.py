"""Dense state-vector simulator (numpy) for unitary-level checks.

A minimal but exact simulator: the state of ``n`` qubits is a rank-``n``
complex tensor with one axis per qubit.  Applying a ``k``-qubit gate is
a tensor contraction over the operand axes — ``O(2^n)`` work per gate,
comfortably fast up to ~14 qubits, which covers the paper's worked
examples and the small benchmark family.

Used by tests to prove, independently of the structural checker, that
``routed circuit = original circuit`` up to the qubit permutation the
router reports.
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.core.layout import Layout
from repro.exceptions import VerificationError

_SQ2 = 1.0 / math.sqrt(2.0)

#: Cap beyond which simulation is refused (2^20 doubles is fine; the
#: tensors above that get slow and pointless for verification).
MAX_SIMULATED_QUBITS = 20


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return np.array(
        [
            [cos, -cmath.exp(1j * lam) * sin],
            [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
        ],
        dtype=complex,
    )


def _controlled(u: np.ndarray) -> np.ndarray:
    """4x4 controlled-U with the first operand as control."""
    out = np.eye(4, dtype=complex)
    out[2:, 2:] = u
    return out


def gate_matrix(gate: Gate) -> np.ndarray:
    """Unitary matrix of ``gate`` in (first operand = most significant)
    bit order.  Raises for directives, which have no unitary."""
    name, p = gate.name, gate.params
    if name == "id":
        return np.eye(2, dtype=complex)
    if name == "x":
        return np.array([[0, 1], [1, 0]], dtype=complex)
    if name == "y":
        return np.array([[0, -1j], [1j, 0]], dtype=complex)
    if name == "z":
        return np.diag([1, -1]).astype(complex)
    if name == "h":
        return np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex)
    if name == "s":
        return np.diag([1, 1j]).astype(complex)
    if name == "sdg":
        return np.diag([1, -1j]).astype(complex)
    if name == "t":
        return np.diag([1, cmath.exp(1j * math.pi / 4)]).astype(complex)
    if name == "tdg":
        return np.diag([1, cmath.exp(-1j * math.pi / 4)]).astype(complex)
    if name == "sx":
        return 0.5 * np.array(
            [[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex
        )
    if name == "sxdg":
        return 0.5 * np.array(
            [[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex
        )
    if name == "rx":
        return _u3(p[0], -math.pi / 2, math.pi / 2)
    if name == "ry":
        return _u3(p[0], 0.0, 0.0)
    if name == "rz":
        return np.diag(
            [cmath.exp(-0.5j * p[0]), cmath.exp(0.5j * p[0])]
        ).astype(complex)
    if name == "u1":
        return np.diag([1, cmath.exp(1j * p[0])]).astype(complex)
    if name == "u2":
        return _u3(math.pi / 2, p[0], p[1])
    if name == "u3":
        return _u3(p[0], p[1], p[2])
    if name == "cx":
        return _controlled(gate_matrix(Gate("x", (0,))))
    if name == "cy":
        return _controlled(gate_matrix(Gate("y", (0,))))
    if name == "cz":
        return _controlled(gate_matrix(Gate("z", (0,))))
    if name == "ch":
        return _controlled(gate_matrix(Gate("h", (0,))))
    if name == "crz":
        return _controlled(gate_matrix(Gate("rz", (0,), p)))
    if name in ("cu1", "cp"):
        return _controlled(gate_matrix(Gate("u1", (0,), p)))
    if name == "rzz":
        phase = cmath.exp(0.5j * p[0])
        return np.diag([1 / phase, phase, phase, 1 / phase]).astype(complex)
    if name == "swap":
        m = np.zeros((4, 4), dtype=complex)
        m[0, 0] = m[3, 3] = 1
        m[1, 2] = m[2, 1] = 1
        return m
    if name == "ccx":
        m = np.eye(8, dtype=complex)
        m[6, 6] = m[7, 7] = 0
        m[6, 7] = m[7, 6] = 1
        return m
    if name == "cswap":
        m = np.eye(8, dtype=complex)
        m[5, 5] = m[6, 6] = 0
        m[5, 6] = m[6, 5] = 1
        return m
    raise VerificationError(f"gate {name!r} has no matrix (directive?)")


class Statevector:
    """State of ``num_qubits`` qubits as a rank-n tensor.

    Axis ``q`` of the tensor indexes qubit ``q``; basis label bit order
    in :meth:`probabilities` puts qubit 0 as the most significant bit
    (matching the paper's |q1 q2 ...> circuit-diagram convention).
    """

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None) -> None:
        if num_qubits < 1:
            raise VerificationError("statevector needs at least 1 qubit")
        if num_qubits > MAX_SIMULATED_QUBITS:
            raise VerificationError(
                f"refusing to simulate {num_qubits} qubits "
                f"(limit {MAX_SIMULATED_QUBITS})"
            )
        self.num_qubits = num_qubits
        if data is None:
            tensor = np.zeros((2,) * num_qubits, dtype=complex)
            tensor[(0,) * num_qubits] = 1.0
            self.tensor = tensor
        else:
            tensor = np.asarray(data, dtype=complex)
            if tensor.size != 2**num_qubits:
                raise VerificationError(
                    f"data has {tensor.size} amplitudes, expected {2**num_qubits}"
                )
            self.tensor = tensor.reshape((2,) * num_qubits)

    # ------------------------------------------------------------------

    @classmethod
    def random(cls, num_qubits: int, seed: int = 0) -> "Statevector":
        """Haar-ish random normalised state (Gaussian amplitudes)."""
        rng = np.random.default_rng(seed)
        amps = rng.normal(size=2**num_qubits) + 1j * rng.normal(size=2**num_qubits)
        amps /= np.linalg.norm(amps)
        return cls(num_qubits, amps)

    def copy(self) -> "Statevector":
        return Statevector(self.num_qubits, self.tensor.copy())

    def apply_gate(self, gate: Gate) -> None:
        """Apply a unitary gate in place (directives are ignored)."""
        if gate.is_directive:
            return
        k = gate.num_qubits
        matrix = gate_matrix(gate).reshape((2,) * (2 * k))
        axes = list(gate.qubits)
        # Contract matrix input indices against the operand axes, then
        # move the fresh output indices back to the operand positions.
        self.tensor = np.tensordot(
            matrix, self.tensor, axes=(list(range(k, 2 * k)), axes)
        )
        self.tensor = np.moveaxis(self.tensor, list(range(k)), axes)

    def apply_circuit(self, circuit: QuantumCircuit) -> "Statevector":
        """Apply every unitary gate of ``circuit`` in order; returns self."""
        if circuit.num_qubits != self.num_qubits:
            raise VerificationError(
                f"circuit has {circuit.num_qubits} qubits, state has "
                f"{self.num_qubits}"
            )
        for gate in circuit:
            self.apply_gate(gate)
        return self

    def permuted(self, logical_of_position: Sequence[int]) -> "Statevector":
        """Reorder qubit axes: new axis ``i`` holds old axis
        ``logical_of_position[i]``."""
        perm = list(logical_of_position)
        if sorted(perm) != list(range(self.num_qubits)):
            raise VerificationError(f"{perm} is not a qubit permutation")
        return Statevector(
            self.num_qubits, np.moveaxis(self.tensor, perm, range(self.num_qubits))
        )

    def amplitudes(self) -> np.ndarray:
        """Flat amplitude vector, qubit 0 most significant."""
        return self.tensor.reshape(-1)

    def probabilities(self) -> np.ndarray:
        return np.abs(self.amplitudes()) ** 2

    def norm(self) -> float:
        return float(np.linalg.norm(self.amplitudes()))

    def fidelity(self, other: "Statevector") -> float:
        """``|<self|other>|^2`` — 1.0 iff equal up to global phase."""
        overlap = np.vdot(self.amplitudes(), other.amplitudes())
        return float(abs(overlap) ** 2)


def simulate(circuit: QuantumCircuit) -> Statevector:
    """Run ``circuit`` on |0...0> and return the final state."""
    return Statevector(circuit.num_qubits).apply_circuit(circuit)


def statevector_equivalent(
    a: QuantumCircuit, b: QuantumCircuit, tolerance: float = 1e-9
) -> bool:
    """Equality of the two circuits' action on a random state.

    A single Haar-random input state distinguishes two different
    unitaries with probability 1, making this a cheap and very strong
    equivalence probe.  Global phase is ignored.
    """
    if a.num_qubits != b.num_qubits:
        return False
    probe = Statevector.random(a.num_qubits, seed=20190417)
    out_a = probe.copy().apply_circuit(a)
    out_b = probe.copy().apply_circuit(b)
    return out_a.fidelity(out_b) > 1.0 - tolerance


def routed_statevector_equivalent(
    original: QuantumCircuit,
    routed: QuantumCircuit,
    initial_layout: Layout,
    final_layout: Layout,
    tolerance: float = 1e-9,
) -> bool:
    """Full physical-level check that routing preserved semantics.

    Simulates the original on the *device-sized* register placed by
    ``initial_layout`` and the routed circuit directly, then compares
    after undoing the output permutation recorded in ``final_layout``.
    SWAPs may be decomposed or not — they are ordinary gates here.
    """
    n_phys = routed.num_qubits
    # Original circuit lifted to physical wires under the initial layout.
    lifted = QuantumCircuit(n_phys, original.name, original.num_clbits)
    for gate in original:
        if not gate.is_directive:
            lifted.append(gate.remapped(initial_layout.l2p))
    out_original = simulate(lifted)
    out_routed = simulate(routed.without_directives())
    # After routing, logical qubit q ended on physical final_layout.l2p[q];
    # move each axis back where the lifted original expects it.
    # Lifted original has logical q on initial_layout.l2p[q]; routed output
    # has logical q on final_layout.l2p[q].  Build the physical->physical
    # permutation sending final homes to initial homes.
    perm = list(range(n_phys))
    for q in range(n_phys):
        perm[initial_layout.physical(q)] = final_layout.physical(q)
    aligned = out_routed.permuted(perm)
    return out_original.fidelity(aligned) > 1.0 - tolerance
