"""Named pipelines: the scenarios the mapper ships ready-made.

A preset is a pass list plus run-parameter defaults.  ``Pipeline`` (and
therefore ``compile_circuit``, the trial engine, and the CLI) resolves
presets by name; :func:`compose_pipeline` derives ad-hoc combinations
— noise-aware routing on a directed device with bridge peepholes is a
three-flag call, not hand-rolled glue.

Pass instances are stateless (all mutable state lives on the
:class:`~repro.pipeline.context.CompilationContext`), so each preset's
pass list is built once and shared process-wide.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.pipeline.base import Pass
from repro.pipeline.passes import (
    BaselineRoutePass,
    BridgeRewrite,
    CollectMetrics,
    ComplianceCheck,
    DecomposeToBasis,
    LegalizeDirections,
    NoiseAwareDistance,
    PerfectEmbedding,
    ResolveDistance,
    SabreLayoutPass,
    SabreRoutePass,
)

#: A preset: (pass factory, run-parameter defaults, one-line summary).
PresetSpec = Tuple[Callable[[], List[Pass]], Dict[str, object], str]


def _paper_passes() -> List[Pass]:
    return [
        DecomposeToBasis(),
        ResolveDistance(),
        SabreLayoutPass(),
        SabreRoutePass(),
        CollectMetrics(),
    ]


def _best_effort_passes() -> List[Pass]:
    return [
        DecomposeToBasis(),
        PerfectEmbedding(),
        ResolveDistance(),
        SabreLayoutPass(),
        SabreRoutePass(),
        CollectMetrics(),
    ]


def _noise_aware_passes() -> List[Pass]:
    return [
        DecomposeToBasis(),
        NoiseAwareDistance(),
        ResolveDistance(),
        SabreLayoutPass(),
        SabreRoutePass(),
        CollectMetrics(),
    ]


def _directed_passes() -> List[Pass]:
    return [
        DecomposeToBasis(),
        ResolveDistance(),
        SabreLayoutPass(),
        SabreRoutePass(),
        LegalizeDirections(),
        ComplianceCheck(),
        CollectMetrics(),
    ]


def _bridge_passes() -> List[Pass]:
    return [
        DecomposeToBasis(),
        ResolveDistance(),
        SabreLayoutPass(),
        SabreRoutePass(),
        BridgeRewrite(),
        ComplianceCheck(),
        CollectMetrics(),
    ]


def _baseline_passes(baseline: str) -> Callable[[], List[Pass]]:
    def build() -> List[Pass]:
        return [
            DecomposeToBasis(),
            ResolveDistance(),
            BaselineRoutePass(baseline),
            ComplianceCheck(),
            CollectMetrics(),
        ]

    return build


PRESETS: Dict[str, PresetSpec] = {
    # The paper's evaluation flow, verbatim: decompose -> reverse-
    # traversal layout search -> SWAP routing -> metrics.  This is what
    # compile_circuit runs; its outputs are byte-identical to the
    # pre-pipeline implementation (the differential suite enforces it).
    "paper_default": (_paper_passes, {}, "the paper's SABRE flow"),
    # One trial, one traversal: the latency-first configuration.
    "fast": (
        _paper_passes,
        {"num_trials": 1, "num_traversals": 1},
        "single-trial single-traversal (lowest latency)",
    ),
    # The paper flow with its best-of-K restarts routed as one
    # trial-major lockstep batch (repro.engine.ensemble): identical
    # per-seed results to paper_default, one shared scoring kernel per
    # step across all trials.  Falls back to serial trials when the
    # configuration is not vector-scorable.
    "ensemble": (
        _paper_passes,
        {"executor": "ensemble"},
        "best-of-K trials routed in lockstep through one batched kernel",
    ),
    # Multi-core sweep: seed shards × lockstep ensembles over a
    # ship-once worker pool (repro.engine.shared); same per-seed
    # results as the paper pipeline, sized to the host's cores.
    "hybrid": (
        _paper_passes,
        {"executor": "hybrid"},
        "best-of-K trials sharded across ship-once ensemble workers",
    ),
    # Let the engine pick serial/ensemble/hybrid/process per sweep
    # from K, the core count, and ensemble eligibility.
    "sweep_auto": (
        _paper_passes,
        {"executor": "auto"},
        "best-of-K trials on the automatically chosen executor",
    ),
    # Try to *prove* a zero-SWAP mapping first (subgraph embedding);
    # fall through to the full search when none exists.
    "best_effort": (
        _best_effort_passes,
        {},
        "perfect-embedding shortcut, then the full search",
    ),
    # Error-weighted distances steer routing around bad couplings.
    "noise_aware": (
        _noise_aware_passes,
        {},
        "noise-weighted distances (needs noise=...)",
    ),
    # Directed-coupling devices: legalise CNOT directions after routing
    # and verify nothing illegal escapes.
    "directed_device": (
        _directed_passes,
        {},
        "route + H-conjugate reversed CNOTs + verify",
    ),
    # SWAP+CNOT -> bridge peephole after routing.
    "bridge": (
        _bridge_passes,
        {},
        "route + bridge distance-2 CNOT peephole + verify",
    ),
    "baseline_trivial": (
        _baseline_passes("trivial"),
        {},
        "shortest-path SWAP-chain baseline under pipeline verification",
    ),
    "baseline_greedy": (
        _baseline_passes("greedy"),
        {},
        "Siraichi-style greedy baseline under pipeline verification",
    ),
    "baseline_astar": (
        _baseline_passes("astar"),
        {},
        "Zulehner-style A* baseline under pipeline verification",
    ),
}


def get_preset(name: str) -> PresetSpec:
    """Look up a named preset or raise with the available names."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ReproError(
            f"unknown pipeline preset {name!r}; available: {sorted(PRESETS)}"
        ) from None


def preset_names() -> List[str]:
    return sorted(PRESETS)


def compose_pipeline(
    base: str = "paper_default",
    noise_aware: bool = False,
    bridge: bool = False,
    legalize_directions: bool = False,
    verify: Optional[bool] = None,
):
    """Derive a pipeline by composing extension passes onto a preset.

    This is the "hand-rolled glue" eliminated: any combination of the
    §VI extensions is one call.  ``verify`` defaults to True whenever a
    post-routing rewrite is enabled (so illegal CX directions cannot
    escape silently) and to whatever the base preset does otherwise.

    Order is fixed by data flow: the noise-aware distance must precede
    the search; the bridge rewrite works on the SWAP-form routing so it
    precedes direction legalisation; verification precedes metrics.

    Returns:
        A fresh :class:`~repro.pipeline.runner.Pipeline`.
    """
    from repro.pipeline.runner import Pipeline

    factory, defaults, _ = get_preset(base)
    passes = factory()
    if verify is None:
        verify = bridge or legalize_directions

    def has(kind) -> bool:
        return any(isinstance(p, kind) for p in passes)

    if noise_aware and not has(NoiseAwareDistance):
        anchor = next(
            (i for i, p in enumerate(passes) if isinstance(p, ResolveDistance)),
            len(passes),
        )
        passes.insert(anchor, NoiseAwareDistance())
    if bridge and not has(BridgeRewrite):
        # The bridge rewrites the SWAP-form routing, so it must precede
        # direction legalisation (which expands SWAPs away) and any
        # verification already in the base preset.
        anchor = next(
            (
                i
                for i, p in enumerate(passes)
                if isinstance(
                    p, (LegalizeDirections, ComplianceCheck, CollectMetrics)
                )
            ),
            len(passes),
        )
        passes.insert(anchor, BridgeRewrite())
    tail = next(
        (
            i
            for i, p in enumerate(passes)
            if isinstance(p, (ComplianceCheck, CollectMetrics))
        ),
        len(passes),
    )
    if legalize_directions and not has(LegalizeDirections):
        passes.insert(tail, LegalizeDirections())
        tail += 1
    if verify and not has(ComplianceCheck):
        passes.insert(tail, ComplianceCheck())

    flags = [
        name
        for enabled, name in (
            (noise_aware, "noise"),
            (bridge, "bridge"),
            (legalize_directions, "directed"),
        )
        if enabled
    ]
    name = base if not flags else f"{base}+{'+'.join(flags)}"
    return Pipeline(passes, name=name, defaults=dict(defaults))
