"""Built-in passes: the existing compile flow re-expressed as stages.

Every stage that used to live inline in ``compile_circuit`` or in one
of the four ``extensions/`` wrappers is one class here, so any
combination — noise-aware distances on a directed device with bridge
peepholes, a baseline router under the paper's verification, an
embedding shortcut in front of the engine fan-out — is a pass list
instead of another fork of the compile flow.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.decompositions import (
    decompose_to_cx_basis,
    needs_cx_decomposition,
)
from repro.circuits.gates import Gate
from repro.core.bidirectional import SabreLayout
from repro.core.result import MappingResult
from repro.core.router import RoutingResult, SabreRouter
from repro.exceptions import ReproError
from repro.pipeline.base import AnalysisPass, Pass, TransformPass
from repro.pipeline.context import CompilationContext


class DecomposeToBasis(TransformPass):
    """Lower the input into the {1q, CNOT} basis the router places.

    3+ qubit gates and explicit SWAPs (which would be mistaken for
    routing SWAPs) force a rewrite; circuits already in basis pass
    through untouched — the need itself is a cached fact of the
    circuit's content (:func:`needs_cx_decomposition`), so trial sweeps
    do not rescan the gate list per compile.
    """

    def run(self, context: CompilationContext) -> None:
        circuit = context.circuit
        context.working = (
            decompose_to_cx_basis(circuit)
            if needs_cx_decomposition(circuit)
            else circuit
        )
        context.properties["decompose.rewritten"] = context.working is not circuit


class ResolveDistance(AnalysisPass):
    """Fetch the device's distance matrix through the engine cache.

    A no-op when an earlier pass (``NoiseAwareDistance``) or the caller
    already provided one, so presets can stack distance providers with
    "first wins" semantics.
    """

    def run(self, context: CompilationContext) -> None:
        if context.distance is not None:
            return
        from repro.engine.cache import get_flat_distance_matrix

        context.distance = get_flat_distance_matrix(context.coupling)


class NoiseAwareDistance(AnalysisPass):
    """Weighted distance matrix from per-edge error rates (paper §VI).

    Resolves the SWAP-log-infidelity-weighted matrix through the engine
    cache (keyed on the weight table, so unit and weighted matrices
    never collide and repeat compiles against one (device, noise) pair
    pay the weighted Floyd-Warshall once per process), and enables the
    heuristic's SWAP-cost penalty so the router also pays for executing
    a SWAP's 3 CNOTs on a noisy coupler.
    """

    def __init__(self, swap_cost_penalty: float = 1.0) -> None:
        self.swap_cost_penalty = swap_cost_penalty

    def run(self, context: CompilationContext) -> None:
        from repro.engine.cache import get_flat_distance_matrix
        from repro.extensions.noise_aware import (
            noise_aware_config,
            noise_edge_weights,
        )

        if context.noise is None:
            raise ReproError(
                "NoiseAwareDistance needs a noise model; pass noise=... to "
                "Pipeline.run (or use the paper_default preset instead)"
            )
        weights = noise_edge_weights(context.coupling, context.noise)
        context.distance = get_flat_distance_matrix(
            context.coupling, edge_weights=weights
        )
        context.config = noise_aware_config(
            context.config, self.swap_cost_penalty
        )
        context.properties["noise.weighted_edges"] = len(weights)


class PerfectEmbedding(AnalysisPass):
    """Zero-SWAP initial mapping via subgraph embedding (paper §V-A1).

    When the circuit's interaction graph embeds into the device, the
    proven perfect layout is pinned as ``initial_layout`` — the routing
    pass then routes once from it with a guaranteed SWAP-free result,
    skipping the layout search entirely.  On failure (or budget
    exhaustion) the pipeline falls through to the standard search.
    """

    def __init__(self, max_nodes: int = 200_000) -> None:
        self.max_nodes = max_nodes

    def run(self, context: CompilationContext) -> None:
        if context.initial_layout is not None:
            return
        from repro.extensions.embedding import find_perfect_layout

        layout = find_perfect_layout(
            context.working
            if context.working is not None
            else context.circuit,
            context.coupling,
            max_nodes=self.max_nodes,
        )
        context.properties["embedding.perfect"] = layout is not None
        if layout is not None:
            context.initial_layout = layout


class SabreLayoutPass(TransformPass):
    """The bidirectional layout search + routing (paper §IV-C2).

    Skipped when a fixed ``initial_layout`` short-circuits the search
    (``SabreRoutePass`` then routes once from it).  With an engine
    executor configured, the best-of-K trial fan-out of
    :mod:`repro.engine.trials` runs instead — each trial executing a
    single-trial pipeline — and the winner's routing lands back on the
    context so post-passes apply to it like any other.
    """

    def run(self, context: CompilationContext) -> None:
        if context.routing is not None or context.initial_layout is not None:
            return
        if context.layout_search is not None:
            # A precomputed search record (the trial ensemble's
            # re-entry seam, see Pipeline.run): adopt it exactly as if
            # the direct search below had produced it.
            best = context.layout_search
            context.routing = context.raw_routing = best.routing
            context.initial_layout = best.initial_layout
            return
        if (
            context.executor is None
            and context.objective != "g_add"
            and context.num_trials > 1
        ):
            # A non-default objective needs the engine's winner
            # selection; the direct path only ranks by (swaps, depth).
            context.executor = "serial"
        if context.executor is not None:
            self._run_engine(context)
            return
        searcher = SabreLayout(
            context.coupling,
            config=context.config,
            num_traversals=context.num_traversals,
            num_trials=context.num_trials,
            seed=context.seed,
            distance=context.distance,
        )
        best = searcher.run(context.working)
        context.layout_search = best
        context.routing = context.raw_routing = best.routing
        context.initial_layout = best.initial_layout

    @staticmethod
    def _run_engine(context: CompilationContext) -> None:
        """Best-of-K independently seeded trials via :mod:`repro.engine`."""
        from repro.engine.trials import run_trials

        outcome = run_trials(
            context.working,
            context.coupling,
            seeds=[context.seed + t for t in range(context.num_trials)],
            config=context.config,
            num_traversals=context.num_traversals,
            objective=context.objective,
            executor=context.executor,
            jobs=context.jobs,
            distance=context.distance,
        )
        winner = outcome.best_result
        context.routing = context.raw_routing = winner.routing
        context.initial_layout = winner.initial_layout
        context.trial_stats = {
            "trial_swaps": outcome.trial_swaps,
            "winning_seed": outcome.winner.seed,
            "objective_value": outcome.winner.value,
            "first_pass_swaps": min(
                (
                    t.result.first_pass_swaps
                    for t in outcome.trials
                    if t.result.first_pass_swaps is not None
                ),
                default=winner.first_pass_swaps,
            ),
        }
        context.properties["engine.trial_swaps"] = outcome.trial_swaps
        context.properties["engine.winning_seed"] = outcome.winner.seed
        # The executor-decision report: which fan-out strategy actually
        # ran (after "auto" resolution or a downgrade), and the hybrid
        # executor's seed shards.  Surfaced by ``repro map --verbose``.
        context.properties["engine.executor"] = outcome.executor
        context.properties["engine.requested_executor"] = (
            outcome.requested_executor
        )
        if outcome.shard_plan is not None:
            context.properties["engine.shard_plan"] = [
                list(shard) for shard in outcome.shard_plan
            ]
        if outcome.downgrade_reason:
            context.properties["engine.downgrade_reason"] = (
                outcome.downgrade_reason
            )


class SabreRoutePass(TransformPass):
    """One routing traversal from a fixed initial layout.

    The path taken when the caller (or ``PerfectEmbedding``) pinned a
    mapping: no search, a single forward traversal over the circuit's
    compile-once IR.  Skipped when a search pass already routed.
    """

    def run(self, context: CompilationContext) -> None:
        if context.routing is not None:
            return
        if context.initial_layout is None:
            raise ReproError(
                "SabreRoutePass needs an initial layout; run SabreLayoutPass "
                "(or PerfectEmbedding, or pass initial_layout=...) first"
            )
        from repro.engine.cache import get_flat_dag

        router = SabreRouter(
            context.coupling,
            config=context.config,
            seed=context.seed,
            distance=context.distance,
        )
        routing = router.run(
            get_flat_dag(context.working),
            initial_layout=context.initial_layout,
        )
        context.routing = context.raw_routing = routing


class BaselineRoutePass(TransformPass):
    """A comparison mapper as a drop-in routing stage.

    Wraps any entry of :data:`repro.baselines.BASELINE_MAPPERS`
    (``trivial``, ``greedy``, ``astar``) so baselines run under the
    same decomposition, verification, and metrics passes as SABRE —
    which is what makes their Table II-style numbers comparable.
    """

    def __init__(self, baseline: str, **mapper_kwargs) -> None:
        from repro.baselines import BASELINE_MAPPERS

        if baseline not in BASELINE_MAPPERS:
            raise ReproError(
                f"unknown baseline {baseline!r}; "
                f"available: {sorted(BASELINE_MAPPERS)}"
            )
        self.baseline = baseline
        self.mapper_kwargs = dict(mapper_kwargs)

    @property
    def name(self) -> str:
        return f"BaselineRoute[{self.baseline}]"

    def run(self, context: CompilationContext) -> None:
        if context.routing is not None:
            return
        from repro.baselines import BASELINE_MAPPERS

        kwargs = dict(self.mapper_kwargs)
        if context.initial_layout is not None and self.baseline == "trivial":
            kwargs.setdefault("initial_layout", context.initial_layout)
        mapper = BASELINE_MAPPERS[self.baseline](context.coupling, **kwargs)
        result = mapper.run(context.working)
        context.routing = context.raw_routing = result.routing
        context.initial_layout = result.initial_layout
        context.properties["baseline.name"] = self.baseline


class BridgeRewrite(TransformPass):
    """Post-routing peephole: SWAP+CNOT -> 4-CNOT bridge (paper §III-A).

    A routed circuit pays 3 CNOTs for a SWAP whose only purpose is to
    enable one CNOT between qubits that never interact again.  The
    bridge identity executes that CNOT *through* the middle qubit at the
    same 4-CNOT cost without moving anything — and when the un-swapped
    operands turn out directly coupled, the SWAP is simply dropped
    (saving all 3 CNOTs).

    A router-inserted SWAP on wires ``(p, m)`` is rewritten when the
    only remaining two-qubit gate touching either wire is the very next
    CNOT it enables; later single-qubit gates and directives on those
    wires are relabelled ``p <-> m`` (dropping a SWAP is exactly that
    relabelling).  The condition makes rewrites pairwise disjoint, so
    one linear scan with a wire permutation suffices.  The rewrite is a
    unitary identity but not a trace equivalence (one CNOT becomes
    four), so it marks the routing as no longer trace-preserving —
    ``ComplianceCheck`` then anchors structural verification on the
    pre-rewrite routing, and the unit suite proves semantics are
    preserved by statevector simulation.
    """

    def run(self, context: CompilationContext) -> None:
        if context.final_circuit is not None:
            raise ReproError(
                "BridgeRewrite works on the SWAP-form routing and must run "
                "before passes that expand it (LegalizeDirections)"
            )
        routing = context.require_routing(self.name)
        circuit = routing.circuit
        gates = circuit.gates
        coupling = context.coupling
        swap_set = set(routing.swap_positions)

        # Last position at which each wire appears in a non-directive
        # multi-qubit gate: the "never interacts again" test.
        last_2q = [-1] * circuit.num_qubits
        for index, gate in enumerate(gates):
            if not gate.is_directive and gate.num_qubits >= 2:
                for q in gate.qubits:
                    last_2q[q] = index

        drops = {}  # swap position -> (p, m)
        rewrites = {}  # enabled-CX position -> replacement gate list
        direct = 0
        bridged = 0
        for position in sorted(swap_set):
            p, m = gates[position].qubits
            target = self._enabled_cx(gates, position, p, m)
            if target is None:
                continue
            cx_index, cx_gate = target
            if cx_index in rewrites:
                # Two SWAPs enabling the same CX (one per operand):
                # rewriting both would compose incorrectly; the first
                # rewrite keeps the second SWAP's effect intact.
                continue
            if last_2q[p] > cx_index or last_2q[m] > cx_index:
                continue  # a wire interacts again later; SWAP still needed
            replacement = self._replacement(cx_gate, p, m, coupling)
            if replacement is None:
                continue
            drops[position] = (p, m)
            rewrites[cx_index] = replacement
            if len(replacement) == 1:
                direct += 1
            else:
                bridged += 1

        if not drops:
            context.properties["bridge.swaps_removed"] = 0
            context.properties["bridge.bridged_cx"] = 0
            context.properties["bridge.direct_cx"] = 0
            return

        out = QuantumCircuit(
            circuit.num_qubits, f"{circuit.name}_bridged", circuit.num_clbits
        )
        # Dropping SWAP(p, m) relabels p <-> m in everything after it;
        # committed drops have pairwise-disjoint wire pairs (enforced by
        # the last_2q condition), so a flat permutation table suffices.
        perm = list(range(circuit.num_qubits))
        identity = True
        swap_positions: List[int] = []
        for index, gate in enumerate(gates):
            if index in drops:
                p, m = drops[index]
                perm[p], perm[m] = perm[m], perm[p]
                identity = False
                continue
            if index in rewrites:
                for replacement_gate in rewrites[index]:
                    out.append_unchecked(replacement_gate)
                continue
            if not gate.is_directive and gate.num_qubits >= 2:
                # Multi-qubit gates are untouched by construction: any
                # that shared a wire with a dropped SWAP would have
                # blocked the drop (or is the rewritten CX itself).
                if index in swap_set:
                    swap_positions.append(out.num_gates)
                out.append_unchecked(gate)
                continue
            out.append_unchecked(
                gate if identity else gate.remapped(perm)
            )

        final_layout = routing.initial_layout.copy()
        for position in swap_positions:
            final_layout.swap_physical(*out[position].qubits)
        context.routing = RoutingResult(
            circuit=out,
            initial_layout=routing.initial_layout,
            final_layout=final_layout,
            num_swaps=len(swap_positions),
            swap_positions=swap_positions,
            num_forced_escapes=routing.num_forced_escapes,
        )
        context.properties["bridge.swaps_removed"] = len(drops)
        context.properties["bridge.bridged_cx"] = bridged
        context.properties["bridge.direct_cx"] = direct
        context.properties["routing.trace_preserving"] = bridged == 0

    @staticmethod
    def _enabled_cx(gates, position: int, p: int, m: int):
        """The first later two-qubit gate touching ``p`` or ``m`` — the
        gate this SWAP exists to enable — if it is a plain CNOT."""
        for index in range(position + 1, len(gates)):
            gate = gates[index]
            if gate.is_directive or gate.num_qubits < 2:
                continue
            if p in gate.qubits or m in gate.qubits:
                if gate.name != "cx":
                    return None  # enables a SWAP or non-CX 2q gate
                return index, gate
        return None  # SWAP enables nothing (cannot happen for SABRE)

    @staticmethod
    def _replacement(cx_gate: Gate, p: int, m: int, coupling) -> Optional[List[Gate]]:
        """Gates implementing the CX with the SWAP dropped, or None.

        With SWAP(p, m) removed, the logical qubit the CX expected on
        one wire sits on the other; substituting that operand either
        lands on a coupled pair (emit the CX directly) or at distance 2
        with the swapped edge's far end as the guaranteed middle (emit
        the 4-CNOT bridge).
        """
        from repro.extensions.bridge import bridge_gates

        control, target = cx_gate.qubits
        if control in (p, m) and target in (p, m):
            # CX on the swapped pair itself: dropping the SWAP just
            # exchanges the operands' wires (still the same coupling).
            return [Gate("cx", (target, control))]
        if control in (p, m):
            other = m if control == p else p
            if coupling.are_coupled(other, target):
                return [Gate("cx", (other, target))]
            return bridge_gates(other, control, target)
        if target in (p, m):
            other = m if target == p else p
            if coupling.are_coupled(control, other):
                return [Gate("cx", (control, other))]
            return bridge_gates(control, target, other)
        return None  # pragma: no cover - _enabled_cx guarantees overlap


class LegalizeDirections(TransformPass):
    """H-conjugate reversed CNOTs for directed devices (paper §III-A).

    Expands remaining SWAPs (3 CNOTs each need their own legalisation)
    and produces the fully hardware-native output circuit.  A no-op
    rewrite on symmetric devices — every CNOT is already allowed.
    """

    def run(self, context: CompilationContext) -> None:
        from repro.extensions.directed import (
            direction_overhead,
            legalize_directions,
        )

        source = context.final_circuit
        if source is None:
            source = context.require_routing(self.name).circuit
        reversed_count, extra_1q = direction_overhead(source, context.coupling)
        context.final_circuit = legalize_directions(source, context.coupling)
        context.properties["directed.reversed_cx"] = reversed_count
        context.properties["directed.extra_1q_gates"] = extra_1q


class ComplianceCheck(AnalysisPass):
    """Verify the output before it can escape the pipeline.

    Two independent checks (paper §III-A's constraint plus semantics):

    - **compliance** of the final physical circuit — every two-qubit
      gate on a coupled pair, and on directed devices (or when forced
      via ``check_direction=True``) every CNOT in a native direction,
      so illegal directions cannot escape silently;
    - **structural equivalence** of the routing as the router produced
      it: replaying it through its evolving layout must recover the
      working circuit exactly.  Anchored on the pre-rewrite routing
      (``raw_routing``) because unitary-level rewrites like the bridge
      are intentionally not trace-preserving.
    """

    def __init__(
        self, check_direction: Optional[bool] = None, structural: bool = True
    ) -> None:
        self.check_direction = check_direction
        self.structural = structural

    def run(self, context: CompilationContext) -> None:
        from repro.verify.compliance import assert_compliant
        from repro.verify.equivalence import assert_equivalent

        check_direction = self.check_direction
        if check_direction is None:
            check_direction = not context.coupling.is_symmetric
        output = context.output_circuit()
        assert_compliant(
            output, context.coupling, check_direction=check_direction
        )
        if self.structural and context.raw_routing is not None:
            raw = context.raw_routing
            assert_equivalent(
                context.working,
                raw.circuit,
                raw.initial_layout,
                swap_positions=raw.swap_positions,
            )
        context.properties["compliance.checked_direction"] = check_direction
        context.properties["compliance.structural"] = (
            self.structural and context.raw_routing is not None
        )


class CollectMetrics(Pass):
    """Assemble the :class:`MappingResult` and stamp the property set.

    The terminal pass of every preset; it reproduces the result shape
    of the three historical compile paths exactly (direct search,
    engine fan-out, fixed initial layout) so the pipeline is a drop-in
    replacement, then attaches the post-pass output circuit and the
    run's :class:`PropertySet`.
    """

    is_analysis = False

    def run(self, context: CompilationContext) -> None:
        routing = context.require_routing(self.name)
        elapsed = time.perf_counter() - context.start_time
        common = dict(
            name=context.circuit.name,
            device_name=context.coupling.name,
            original_circuit=context.working,
            routing=routing,
            final_layout=routing.final_layout,
            num_swaps=routing.num_swaps,
            runtime_seconds=elapsed,
        )
        search = context.layout_search
        if search is not None:
            result = MappingResult(
                initial_layout=search.initial_layout,
                first_pass_swaps=search.best_first_pass_swaps,
                trial_swaps=[t.final_swaps for t in search.trials],
                num_trials=context.num_trials,
                num_traversals=context.num_traversals,
                **common,
            )
        elif context.trial_stats is not None:
            stats = context.trial_stats
            result = MappingResult(
                initial_layout=context.initial_layout,
                first_pass_swaps=stats["first_pass_swaps"],
                trial_swaps=stats["trial_swaps"],
                num_trials=context.num_trials,
                num_traversals=context.num_traversals,
                **common,
            )
        else:
            result = MappingResult(
                initial_layout=routing.initial_layout,
                first_pass_swaps=None,
                trial_swaps=[routing.num_swaps],
                num_trials=1,
                num_traversals=1,
                **common,
            )
        if context.final_circuit is not None:
            result.final_circuit = context.final_circuit
        if (
            context.final_circuit is not None
            or context.properties.get("bridge.swaps_removed")
        ):
            # Post-pass-honest added-gate count: the paper's g_add
            # (3 x SWAPs) undercounts bridge CNOTs and direction fixes.
            context.properties["post.added_gates"] = (
                result.physical_circuit(decompose_swaps=True).count_gates()
                - context.working.count_gates()
            )
        # Attach the live PropertySet (not a copy): the runner records
        # this pass's own timing after it returns, and callers keep the
        # timing_report() helper.
        result.properties = context.properties
        context.result = result
