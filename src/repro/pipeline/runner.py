"""The ``Pipeline`` runner: execute passes over one shared context.

``Pipeline("paper_default").run(circuit, device)`` is the composition
surface the whole stack fronts: ``compile_circuit`` executes it, each
engine trial executes one, the CLI selects one by name, and extensions
are rows in its pass list rather than forks of the compile flow.

The runner owns the cross-cutting concerns so passes stay small:
input validation (identical errors to the historical front door),
run-parameter defaulting (preset defaults under caller overrides),
per-pass wall-clock timing into the :class:`PropertySet`, and the
analysis-pass invariant (an analysis pass must not replace the working
circuit, the routing, or the final output).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Union

from repro.circuits.circuit import QuantumCircuit
from repro.core.heuristic import HeuristicConfig
from repro.core.layout import Layout
from repro.core.result import MappingResult
from repro.core.scoring import FlatDistance
from repro.exceptions import MappingError, ReproError
from repro.hardware.coupling import CouplingGraph
from repro.hardware.noise import NoiseModel
from repro.pipeline.base import Pass
from repro.pipeline.context import CompilationContext, PropertySet
from repro.telemetry.trace import span


class Pipeline:
    """A declarative compiler: an ordered pass list plus defaults.

    Args:
        passes: a preset name (see
            :func:`repro.pipeline.presets.preset_names`) or an explicit
            pass sequence.
        name: display name; defaults to the preset name or "custom".
        defaults: run-parameter defaults applied when the caller leaves
            the corresponding ``run`` argument unset (presets use this —
            e.g. ``fast`` pins ``num_trials=1, num_traversals=1``).

    Example::

        from repro.pipeline import Pipeline

        result = Pipeline("noise_aware").run(
            circuit, device, noise=noise_model, seed=0
        )
        print(result.properties.timing_report())
    """

    def __init__(
        self,
        passes: Union[str, Sequence[Pass]],
        name: Optional[str] = None,
        defaults: Optional[Dict[str, object]] = None,
    ) -> None:
        if isinstance(passes, str):
            from repro.pipeline.presets import get_preset

            factory, preset_defaults, _ = get_preset(passes)
            self.passes: List[Pass] = factory()
            self.name = name or passes
            self.defaults = dict(preset_defaults)
            if defaults:
                self.defaults.update(defaults)
        else:
            self.passes = list(passes)
            self.name = name or "custom"
            self.defaults = dict(defaults or {})
        for p in self.passes:
            if not isinstance(p, Pass):
                raise ReproError(
                    f"pipeline {self.name!r} entry {p!r} is not a Pass"
                )

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self.passes)
        return f"Pipeline({self.name!r}: [{names}])"

    def _default(self, key: str, value, fallback):
        if value is not None:
            return value
        return self.defaults.get(key, fallback)

    def run(
        self,
        circuit: QuantumCircuit,
        coupling: CouplingGraph,
        config: Optional[HeuristicConfig] = None,
        seed: Optional[int] = None,
        num_trials: Optional[int] = None,
        num_traversals: Optional[int] = None,
        initial_layout: Optional[Layout] = None,
        distance: Optional[
            Union[FlatDistance, Sequence[Sequence[float]]]
        ] = None,
        objective: Optional[str] = None,
        executor: Optional[str] = None,
        jobs: Optional[int] = None,
        noise: Optional[NoiseModel] = None,
        layout_search: Optional[object] = None,
    ) -> MappingResult:
        """Execute every pass over a fresh context; return the result.

        Parameters mirror :func:`repro.core.compiler.compile_circuit`;
        ``None`` means "preset default, else the paper's value".
        ``noise`` feeds noise-aware passes.  ``layout_search`` injects
        a precomputed bidirectional-search record
        (:class:`~repro.core.bidirectional.BidirectionalResult`): the
        layout-search pass adopts its routing instead of searching —
        the re-entry seam of the trial ensemble
        (:mod:`repro.engine.ensemble`), which batch-routes K trials
        and then replays each through its pipeline for decomposition,
        post-passes, and metrics.  The returned :class:`MappingResult`
        carries the run's property set (``result.properties``)
        including per-pass timings.
        """
        coupling.require_connected()
        if circuit.num_qubits > coupling.num_qubits:
            raise MappingError(
                f"circuit {circuit.name!r} needs {circuit.num_qubits} qubits; "
                f"device {coupling.name!r} has {coupling.num_qubits}"
            )
        if distance is not None and not isinstance(distance, FlatDistance):
            distance = FlatDistance.from_matrix(distance)
        context = CompilationContext(
            circuit=circuit,
            coupling=coupling,
            config=self._default("config", config, None),
            seed=self._default("seed", seed, 0),
            num_trials=self._default("num_trials", num_trials, 5),
            num_traversals=self._default("num_traversals", num_traversals, 3),
            objective=self._default("objective", objective, "g_add"),
            executor=self._default("executor", executor, None),
            jobs=self._default("jobs", jobs, None),
            noise=noise,
            initial_layout=initial_layout,
            layout_search=layout_search,
            distance=distance,
            properties=PropertySet(),
        )
        context.properties["pipeline.name"] = self.name
        with span("pipeline.run") as pipeline_span:
            pipeline_span.set("preset", self.name)
            for pass_ in self.passes:
                before = None
                if pass_.is_analysis:
                    before = self._program_state(context)
                started = time.perf_counter()
                with span(f"pass.{pass_.name}"):
                    pass_.run(context)
                context.properties.record_timing(
                    pass_.name, time.perf_counter() - started
                )
                if before is not None and before != self._program_state(
                    context
                ):
                    raise ReproError(
                        f"analysis pass {pass_.name!r} mutated the program "
                        "state; rewrite passes must subclass TransformPass"
                    )
        if context.result is None:
            raise ReproError(
                f"pipeline {self.name!r} produced no MappingResult; "
                "did you forget the CollectMetrics terminal pass?"
            )
        return context.result

    @staticmethod
    def _program_state(context: CompilationContext):
        """Fingerprint of the mutable program state an analysis pass
        must not touch: object identities plus the circuits' mutation
        counters (catching in-place appends, not just replacement)."""
        routing = context.routing
        return (
            id(context.working),
            getattr(context.working, "_mutations", None),
            id(routing),
            None if routing is None else routing.circuit._mutations,
            id(context.final_circuit),
            getattr(context.final_circuit, "_mutations", None),
        )


#: Process-wide preset pipeline singletons (passes are stateless, so a
#: shared instance per preset name is safe and keeps the per-compile
#: overhead of the pipeline layer to a dictionary lookup).
_SHARED: Dict[str, Pipeline] = {}


def get_pipeline(preset: str) -> Pipeline:
    """The shared :class:`Pipeline` instance for a preset name."""
    pipeline = _SHARED.get(preset)
    if pipeline is None:
        pipeline = Pipeline(preset)
        _SHARED[preset] = pipeline
    return pipeline
