"""Shared state threaded through a pipeline run.

Before this package existed, every layer threaded the same handful of
objects by hand — circuit, coupling graph, distance matrix, layout,
heuristic config, seeds — through four divergent ``compile_*`` wrapper
signatures.  :class:`CompilationContext` is that state made explicit:
one mutable record the passes read and extend, plus a
:class:`PropertySet` for derived facts and per-pass metrics (timings,
verification verdicts, rewrite statistics, objective overrides).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.heuristic import HeuristicConfig
from repro.core.layout import Layout
from repro.core.result import MappingResult
from repro.core.router import RoutingResult
from repro.core.scoring import FlatDistance
from repro.hardware.coupling import CouplingGraph
from repro.hardware.noise import NoiseModel


class PropertySet(dict):
    """Pass-to-pass scratch space: a dict with timing helpers.

    Conventional keys:

    - ``pass_timings`` — ``[(pass_name, seconds), ...]`` appended by the
      runner, one entry per executed pass, in execution order.
    - ``objective.<name>`` — float override consulted by
      :func:`repro.engine.trials.objective_value` before the built-in
      metric functions, so a pipeline can precompute (or redefine) the
      score its trials are ranked by.
    - ``<pass>.<fact>`` — anything a pass wants downstream passes,
      reports, or callers to see (``bridge.swaps_removed``,
      ``compliance.checked_direction``, ``embedding.perfect`` ...).
    """

    def record_timing(self, pass_name: str, seconds: float) -> None:
        self.setdefault("pass_timings", []).append((pass_name, seconds))

    @property
    def pass_timings(self) -> List[Tuple[str, float]]:
        return self.get("pass_timings", [])

    def timing_report(self) -> str:
        """Human-readable per-pass timing breakdown (CLI ``--verbose``)."""
        timings = self.pass_timings
        if not timings:
            return "no pass timings recorded"
        width = max(len(name) for name, _ in timings)
        total = sum(seconds for _, seconds in timings)
        lines = ["pass timings:"]
        for name, seconds in timings:
            share = (seconds / total * 100.0) if total > 0 else 0.0
            lines.append(f"  {name:{width}s}  {seconds * 1e3:9.3f} ms  {share:5.1f}%")
        lines.append(f"  {'total':{width}s}  {total * 1e3:9.3f} ms")
        return "\n".join(lines)


@dataclass
class CompilationContext:
    """Everything a pipeline run knows, mutable by its passes.

    Attributes:
        circuit: the caller's original circuit (never mutated).
        coupling: target device.
        config: heuristic knobs; ``None`` means paper defaults (passes
            may replace it, e.g. the noise-aware distance pass enables
            the SWAP-cost penalty).
        seed / num_trials / num_traversals / objective / executor /
            jobs: the search configuration of
            :func:`repro.core.compiler.compile_circuit`, verbatim.
        noise: optional noise model for noise-aware passes.
        working: the circuit being compiled (basis-decomposed view of
            ``circuit``); set by ``DecomposeToBasis``.
        distance: the device distance matrix the router consumes; set
            by ``ResolveDistance`` or ``NoiseAwareDistance``.
        initial_layout: fixed starting mapping; pre-set by the caller or
            by ``PerfectEmbedding``, it short-circuits the layout search.
        layout_search: the full bidirectional-search record when the
            direct ``SabreLayout`` path ran.
        trial_stats: engine-path statistics (best-of-K fan-out) when the
            executor path ran.
        routing: the current routed output (SWAPs as ``swap`` gates).
            Routing-level rewrites (``BridgeRewrite``) replace it.
        raw_routing: the routing exactly as the router produced it —
            the trace-equivalence anchor ``ComplianceCheck`` verifies
            even after unitary-level rewrites changed ``routing``.
        final_circuit: fully expanded post-pass output (e.g. after
            direction legalisation); ``None`` means derive it from
            ``routing`` on demand.
        result: the assembled :class:`MappingResult` (``CollectMetrics``).
        properties: the :class:`PropertySet` of this run.
        start_time: ``perf_counter`` stamp taken when the run began.
    """

    circuit: QuantumCircuit
    coupling: CouplingGraph
    config: Optional[HeuristicConfig] = None
    seed: int = 0
    num_trials: int = 5
    num_traversals: int = 3
    objective: str = "g_add"
    executor: Optional[str] = None
    jobs: Optional[int] = None
    noise: Optional[NoiseModel] = None
    working: Optional[QuantumCircuit] = None
    distance: Optional[FlatDistance] = None
    initial_layout: Optional[Layout] = None
    layout_search: Optional[object] = None
    trial_stats: Optional[Dict[str, Any]] = None
    routing: Optional[RoutingResult] = None
    raw_routing: Optional[RoutingResult] = None
    final_circuit: Optional[QuantumCircuit] = None
    result: Optional[MappingResult] = None
    properties: PropertySet = field(default_factory=PropertySet)
    start_time: float = field(default_factory=time.perf_counter)

    def require_routing(self, pass_name: str) -> RoutingResult:
        """The current routing, or a clear error naming the culprit."""
        if self.routing is None:
            from repro.exceptions import ReproError

            raise ReproError(
                f"{pass_name} needs a routed circuit; run a routing pass "
                "(SabreLayoutPass/SabreRoutePass or a baseline) first"
            )
        return self.routing

    def output_circuit(self) -> QuantumCircuit:
        """The current physical output: post-pass circuit when one was
        produced, otherwise the routing's 3-CNOT-decomposed form."""
        if self.final_circuit is not None:
            return self.final_circuit
        return self.require_routing("output_circuit").physical_circuit(
            decompose_swaps=True
        )
