"""Composable pass-pipeline compiler.

The paper evaluates SABRE as one fixed flow (decompose -> reverse-
traversal layout -> SWAP routing); a production mapper must *combine*
scenarios — noise-aware distances, directed-coupling legalisation,
bridge rewrites, embedding shortcuts, baseline comparisons — per
request.  This package is that composition surface, in the style of
Qiskit's transpiler pass manager:

- :class:`~repro.pipeline.base.Pass` — the unit of composition
  (:class:`AnalysisPass` derives facts, :class:`TransformPass` rewrites
  program state);
- :class:`~repro.pipeline.context.CompilationContext` — the shared
  state the layers used to thread by hand (circuit + memoized IRs,
  coupling graph, distance matrix, layout, heuristic config, seeds)
  plus a :class:`~repro.pipeline.context.PropertySet` of per-pass
  timings and derived metrics;
- :class:`~repro.pipeline.runner.Pipeline` — the runner, constructible
  from a preset name or an explicit pass list;
- :mod:`~repro.pipeline.presets` — named scenarios (``paper_default``,
  ``fast``, ``best_effort``, ``noise_aware``, ``directed_device``,
  ``bridge``, ``baseline_*``) and :func:`compose_pipeline` for ad-hoc
  combinations.

``compile_circuit`` executes ``paper_default``, every engine trial
executes a pipeline, and the CLI selects one with ``--pipeline``.
"""

from repro.pipeline.base import AnalysisPass, Pass, TransformPass
from repro.pipeline.context import CompilationContext, PropertySet
from repro.pipeline.passes import (
    BaselineRoutePass,
    BridgeRewrite,
    CollectMetrics,
    ComplianceCheck,
    DecomposeToBasis,
    LegalizeDirections,
    NoiseAwareDistance,
    PerfectEmbedding,
    ResolveDistance,
    SabreLayoutPass,
    SabreRoutePass,
)
from repro.pipeline.presets import (
    PRESETS,
    compose_pipeline,
    get_preset,
    preset_names,
)
from repro.pipeline.runner import Pipeline, get_pipeline

__all__ = [
    "AnalysisPass",
    "BaselineRoutePass",
    "BridgeRewrite",
    "CollectMetrics",
    "CompilationContext",
    "ComplianceCheck",
    "DecomposeToBasis",
    "LegalizeDirections",
    "NoiseAwareDistance",
    "PRESETS",
    "Pass",
    "PerfectEmbedding",
    "Pipeline",
    "PropertySet",
    "ResolveDistance",
    "SabreLayoutPass",
    "SabreRoutePass",
    "TransformPass",
    "compose_pipeline",
    "get_pipeline",
    "get_preset",
    "preset_names",
]
