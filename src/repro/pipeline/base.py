"""The ``Pass`` protocol: the unit of composition of the compiler.

A pass is a small, reusable stage that reads and/or extends a shared
:class:`~repro.pipeline.context.CompilationContext`.  Two kinds exist,
mirroring the classic pass-manager split (Qiskit's transpiler, LLVM):

- **analysis passes** derive facts — a distance matrix, a perfect
  layout, a verification verdict — and record them on the context or
  its :class:`~repro.pipeline.context.PropertySet`.  They must *not*
  replace the working circuit, the routing, or the final physical
  circuit; the :class:`~repro.pipeline.runner.Pipeline` runner enforces
  this invariant after every analysis pass.
- **transform passes** rewrite the program state: decompose to the CX
  basis, search a layout and route, legalise CNOT directions, bridge
  distance-2 CNOTs.

Passes hold only immutable configuration on ``self`` (everything
mutable lives on the context), so one pass instance can be shared by
every pipeline and every thread — preset pipelines are process-wide
singletons for exactly this reason.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.pipeline.context import CompilationContext


class Pass:
    """Base class for pipeline passes.

    Subclasses implement :meth:`run` and may override :attr:`name`
    (defaults to the class name) — the name keys the per-pass timing
    entries in the context's :class:`PropertySet`.
    """

    #: True for analysis passes (see module docstring); the runner
    #: checks that analysis passes leave the program state untouched.
    is_analysis = False

    @property
    def name(self) -> str:
        return type(self).__name__

    def run(self, context: "CompilationContext") -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        kind = "analysis" if self.is_analysis else "transform"
        return f"<{self.name} ({kind} pass)>"


class AnalysisPass(Pass):
    """A pass that derives facts without rewriting the program state."""

    is_analysis = True


class TransformPass(Pass):
    """A pass that rewrites the working circuit, routing, or output."""

    is_analysis = False
