"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``map`` — compile an OpenQASM 2.0 file for a device and write the
  hardware-compliant QASM (the end-user workflow).
- ``serve`` — run the compilation service (:mod:`repro.service`): an
  HTTP JSON API with a persistent result store and request coalescing.
- ``submit`` — POST a QASM file to a running service and print/write
  the routed output.
- ``devices`` — list built-in devices with their key properties (the
  same catalog the service's ``GET /devices`` returns).
- ``store scrub`` — verify a persistent result store's checksums and
  report (or, with ``--repair``, quarantine) corrupt entries.
- ``draw`` — render a QASM circuit as ASCII art.
- ``table2`` / ``fig8`` / ``scaling`` — forward to the experiment
  harnesses (same flags as their ``python -m repro.analysis.*`` entry
  points).

Example::

    python -m repro map circuit.qasm --device ibm_q20_tokyo -o mapped.qasm

``map`` fronts the pass-pipeline compiler (:mod:`repro.pipeline`) and
the multi-trial engine (:mod:`repro.engine`): ``--pipeline`` selects a
named preset, ``--noise-aware`` / ``--bridge`` /
``--legalize-directions`` compose extension passes onto it,
``--trials`` sets the best-of-K seed pool, ``--jobs`` fans trials
across worker processes, ``--executor ensemble`` routes all trials in
lockstep through the batched vector kernel, ``--executor hybrid``
shards the seeds across ship-once ensemble workers, ``--scorer``
selects the scoring implementation, ``--objective`` picks the winner
metric, and ``--verbose`` prints the executor-decision report and the
per-pass timing breakdown recorded in the result's property set.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import compare as compare_mod
from repro.analysis import scaling as scaling_mod
from repro.analysis import table2 as table2_mod
from repro.analysis import tradeoff as tradeoff_mod
from repro.circuits.depth import circuit_depth
from repro.circuits.transforms import optimize_circuit
from repro.circuits.visualization import draw_circuit, draw_coupling
from repro.core.heuristic import HeuristicConfig
from repro.hardware.devices import DEVICE_BUILDERS, device_catalog, get_device
from repro.hardware.noise import IBM_Q20_TOKYO_NOISE, NoiseModel
from repro.pipeline import (
    NoiseAwareDistance,
    Pipeline,
    compose_pipeline,
    preset_names,
)
from repro.qasm import parse_qasm_file, write_qasm_file


def load_noise_profile(path: str) -> NoiseModel:
    """Build a :class:`NoiseModel` from a JSON profile.

    Format: any :class:`NoiseModel` field, with ``edge_errors`` keyed
    by ``"a,b"`` qubit-pair strings::

        {"two_qubit_error": 0.03, "edge_errors": {"0,1": 0.12, "5,6": 0.08}}
    """
    import json

    with open(path) as handle:
        raw = json.load(handle)
    edge_errors = {}
    for key, rate in raw.pop("edge_errors", {}).items():
        a, b = (int(q) for q in key.split(","))
        edge_errors[(min(a, b), max(a, b))] = float(rate)
    return NoiseModel(edge_errors=edge_errors, **raw)


def _cmd_map(args: argparse.Namespace) -> int:
    circuit = parse_qasm_file(args.input)
    device = get_device(args.device)
    config = HeuristicConfig(
        mode=args.heuristic,
        decay_delta=args.delta,
        extended_set_size=args.extended_set,
        extended_set_weight=args.weight,
        scorer=args.scorer,
    )
    # Extension flags compose passes onto the chosen preset; a bare
    # --pipeline <preset> runs the preset verbatim.
    if args.noise_aware or args.bridge or args.legalize_directions:
        pipeline = compose_pipeline(
            args.pipeline,
            noise_aware=args.noise_aware,
            bridge=args.bridge,
            legalize_directions=args.legalize_directions,
        )
    else:
        pipeline = Pipeline(args.pipeline)
    # Any pipeline containing the noise-aware pass (composed via
    # --noise-aware or baked into the preset) needs a model: the
    # profile file when given, else the chip-average defaults.
    noise = None
    if any(isinstance(p, NoiseAwareDistance) for p in pipeline.passes):
        noise = (
            load_noise_profile(args.noise_profile)
            if args.noise_profile
            else IBM_Q20_TOKYO_NOISE
        )
    # The pipeline upgrades executor=None to the serial engine when a
    # non-default objective needs it; with --executor auto the CLI only
    # decides pool width, otherwise the user's choice passes through
    # ("engine-auto" hands the full decision to the engine chooser).
    if args.executor == "auto":
        executor = "process" if args.jobs > 1 else None
    elif args.executor == "engine-auto":
        executor = "auto"
    else:
        executor = args.executor
    def _run():
        return pipeline.run(
            circuit,
            device,
            config=config,
            seed=args.seed,
            num_trials=args.trials,
            num_traversals=args.traversals,
            objective=args.objective,
            executor=executor,
            jobs=args.jobs,
            noise=noise,
        )

    trace_tree = None
    if args.trace:
        import time as time_mod

        from repro.telemetry.profile import profiled_routing
        from repro.telemetry.trace import Tracer, render_span_tree, tracing

        tracer = Tracer()
        with tracing(tracer):
            with profiled_routing() as profiler:
                result = _run()
            if not profiler.empty:
                tracer.add_raw(
                    "router.profile",
                    None,
                    start=time_mod.time(),
                    wall_seconds=profiler.kernel_seconds,
                    attrs=profiler.to_dict(),
                )
        trace_tree = render_span_tree(tracer.export())
    else:
        result = _run()
    physical = result.physical_circuit(decompose_swaps=not args.keep_swaps)
    if args.optimize:
        physical = optimize_circuit(physical)
    print(result.summary(), file=sys.stderr)
    if trace_tree is not None:
        print(trace_tree, file=sys.stderr)
    if args.verbose:
        print(f"pipeline     : {pipeline.name}", file=sys.stderr)
        props = result.properties
        if "engine.executor" in props:
            # Executor-decision report: what the trial engine actually
            # ran (after auto resolution or a downgrade) and how the
            # hybrid executor sharded the seeds.
            effective = props["engine.executor"]
            requested = props.get("engine.requested_executor", effective)
            line = f"executor     : {effective}"
            if requested != effective:
                line += f" (requested {requested})"
            shard_plan = props.get("engine.shard_plan")
            if shard_plan:
                sizes = "+".join(str(len(shard)) for shard in shard_plan)
                line += f", shards {sizes} across {len(shard_plan)} workers"
            print(line, file=sys.stderr)
            reason = props.get("engine.downgrade_reason")
            if reason:
                print(f"  downgrade  : {reason}", file=sys.stderr)
        else:
            print(
                "executor     : direct search (no trial engine)",
                file=sys.stderr,
            )
        print(result.properties.timing_report(), file=sys.stderr)
    if args.optimize:
        print(
            f"post-optimize  : {physical.count_gates()} gates, depth "
            f"{circuit_depth(physical)}",
            file=sys.stderr,
        )
    if args.output:
        write_qasm_file(physical, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        from repro.qasm import emit_qasm

        sys.stdout.write(emit_qasm(physical))
    return 0


def _cmd_devices(args: argparse.Namespace) -> int:
    # Same code path as the service's GET /devices (device_catalog), so
    # the CLI listing and the HTTP listing can never disagree.
    catalog = device_catalog()
    if getattr(args, "json", False):
        import json

        print(json.dumps(catalog, indent=1))
        return 0
    for row in catalog:
        direction = "directed" if row["directed"] else "symmetric"
        print(
            f"{row['name']:16s} {row['qubits']:3d} qubits  "
            f"{row['edges']:3d} couplings  diameter "
            f"{row['diameter']}  {direction}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.service import build_server, serve_url, shutdown_service
    from repro.service.faults import FaultPlan, activate
    from repro.service.store import ShardedResultStore

    def log(message: str, **fields: object) -> None:
        """Operator log line; one JSON object per line under --log-json."""
        if args.log_json:
            record = {
                "ts": round(time.time(), 6),
                "level": "info",
                "logger": "repro.serve",
                "message": message,
            }
            record.update(fields)
            print(json.dumps(record), file=sys.stderr, flush=True)
        else:
            print(message, file=sys.stderr, flush=True)

    # Chaos runs export REPRO_FAULT_PLAN; activating it eagerly (rather
    # than on the first seam hit) surfaces a malformed plan at startup
    # and prints the seed so the run is attributable.
    plan = FaultPlan.from_env()
    if plan is not None:
        activate(plan)
        log(
            f"FAULT INJECTION ACTIVE: seed={plan.seed} "
            f"rules={len(plan.rules)} (from $REPRO_FAULT_PLAN)",
            seed=plan.seed,
            rules=len(plan.rules),
        )
    store = ShardedResultStore(
        root=args.store_dir or None,
        max_memory_entries=args.memory_entries,
        num_shards=args.store_shards,
    )
    if store.last_recovery and any(store.last_recovery.values()):
        log(
            f"store recovery: {store.last_recovery}",
            recovery=store.last_recovery,
        )
    server = build_server(
        host=args.host,
        port=args.port,
        store=store,
        workers=args.workers,
        verbose=args.verbose,
        execution=args.execution,
        mp_start_method=args.mp_start_method,
        max_queue_depth=args.queue_limit or None,  # 0 -> unbounded
        default_timeout=args.timeout,
        degrade=not args.no_degrade,
        trial_jobs=args.trial_jobs or None,  # 0 -> serial sweeps
        log_json=args.log_json,
    )
    tier = args.store_dir if args.store_dir else "memory-only"
    log(
        f"repro service on {serve_url(server)} "
        f"(workers={args.workers} [{args.execution}], store={tier}, "
        f"queue-limit={args.queue_limit}, "
        f"trial-jobs={args.trial_jobs or 'serial'})",
        url=serve_url(server),
        workers=args.workers,
        execution=args.execution,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        if args.verbose or args.log_json:
            # Same snapshot function as GET /stats and /metrics — the
            # shutdown report can never drift from the live endpoints.
            snapshot = server.state.snapshot()
            if args.log_json:
                log("shutdown stats", stats=snapshot)
            else:
                for section in ("store", "scheduler", "engine_cache", "faults"):
                    if section in snapshot:
                        print(
                            f"{section:12s} : {snapshot[section]}",
                            file=sys.stderr,
                        )
        shutdown_service(server)
    return 0


def _cmd_store_scrub(args: argparse.Namespace) -> int:
    import os

    from repro.service.store import ResultStore

    if not os.path.isdir(args.store_dir):
        print(f"no store at {args.store_dir}", file=sys.stderr)
        return 2
    # recover=False: scrub IS the audit — don't mutate anything before
    # it unless --repair asked for it.
    store = ResultStore(root=args.store_dir, recover=False)
    report = store.scrub(repair=args.repair)
    if args.json:
        import json

        print(json.dumps(report, indent=1))
    else:
        print(
            f"scrub {report['root']}: {report['scanned']} scanned, "
            f"{report['ok']} ok, {report['corrupt']} corrupt, "
            f"{report['quarantined']} quarantined, "
            f"{report['version_mismatch']} version-mismatch, "
            f"{report['orphaned_artifacts']} orphaned artifacts, "
            f"{report['tmp_files']} tmp files"
        )
        for problem in report["problems"]:
            print(f"  {problem['key'][:16]}: {problem['problem']}")
    # Report-only mode exits non-zero when it found corruption so CI
    # and cron wrappers can alert; --repair already acted on it.
    if report["corrupt"] and not args.repair:
        return 1
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceClientError

    with open(args.input) as handle:
        qasm = handle.read()
    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        reply = client.compile(
            qasm,
            device=args.device,
            pipeline=args.pipeline,
            seed=args.seed,
            trials=args.trials,
            traversals=args.traversals,
            objective=args.objective,
        )
    except ServiceClientError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    result = reply["result"]
    metrics = result["metrics"]
    source = "store" if reply.get("cached") else "compiled"
    print(
        f"job {reply['id']} [{source}]  g_ori={metrics['g_ori']} "
        f"g_add={metrics['g_add']} d_out={metrics['d_out']} "
        f"t={result['compile_seconds']:.4f}s",
        file=sys.stderr,
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result["routed_qasm"])
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(result["routed_qasm"])
    return 0


def _cmd_draw(args: argparse.Namespace) -> int:
    if args.device:
        print(draw_coupling(get_device(args.device)))
        return 0
    if not args.input:
        print("draw needs a QASM file or --device", file=sys.stderr)
        return 2
    circuit = parse_qasm_file(args.input)
    print(draw_circuit(circuit, max_columns=args.max_columns))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SABRE qubit mapping (ASPLOS 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    map_p = sub.add_parser("map", help="compile a QASM file for a device")
    map_p.add_argument("input", help="input OpenQASM 2.0 file")
    map_p.add_argument(
        "--device", default="ibm_q20_tokyo", choices=sorted(DEVICE_BUILDERS)
    )
    map_p.add_argument("-o", "--output", help="output QASM path (default stdout)")
    map_p.add_argument("--seed", type=int, default=0)
    map_p.add_argument(
        "--pipeline",
        default="paper_default",
        choices=preset_names(),
        help="pass-pipeline preset to execute (default: the paper's flow)",
    )
    map_p.add_argument(
        "--noise-aware",
        action="store_true",
        help="compose the noise-weighted distance pass onto the pipeline "
        "(supply --noise-profile for per-edge rates; without one the "
        "chip-average model normalises back to hop counts and only the "
        "SWAP-cost penalty changes)",
    )
    map_p.add_argument(
        "--noise-profile",
        help="JSON noise profile, e.g. "
        '{"two_qubit_error": 0.03, "edge_errors": {"0,1": 0.12}}',
    )
    map_p.add_argument(
        "--bridge",
        action="store_true",
        help="compose the post-routing SWAP+CNOT -> bridge peephole",
    )
    map_p.add_argument(
        "--legalize-directions",
        action="store_true",
        help="compose CNOT-direction legalisation (directed devices)",
    )
    map_p.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print the per-pass timing breakdown to stderr",
    )
    map_p.add_argument(
        "--trials",
        type=int,
        default=None,
        help="independently seeded compilation trials; best kept "
        "(default: the pipeline preset's, paper: 5)",
    )
    map_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the trials (>1 enables the process "
        "pool executor of repro.engine)",
    )
    map_p.add_argument(
        "--objective",
        default="g_add",
        choices=("g_add", "depth", "weighted"),
        help="trial-winner selection metric (default: paper's g_add)",
    )
    map_p.add_argument("--traversals", type=int, default=None)
    map_p.add_argument(
        "--heuristic", default="decay", choices=("basic", "lookahead", "decay")
    )
    map_p.add_argument(
        "--scorer",
        default="auto",
        choices=("auto", "vector", "fast", "reference"),
        help="candidate-SWAP scoring implementation (auto reads "
        "$REPRO_SCORER, defaulting to the batched numpy vector scorer)",
    )
    map_p.add_argument(
        "--executor",
        default="auto",
        choices=("auto", "serial", "process", "ensemble", "hybrid", "engine-auto"),
        help="trial fan-out strategy: serial loop, process pool sized "
        "by --jobs, the trial-major lockstep ensemble that routes "
        "every seed through one batched vector kernel, or hybrid — "
        "seed shards each running the ensemble in its own ship-once "
        "worker process (--jobs workers).  auto picks process when "
        "--jobs > 1, else lets the pipeline decide; engine-auto hands "
        "the choice to the engine's K x cores x eligibility chooser",
    )
    map_p.add_argument("--delta", type=float, default=0.001)
    map_p.add_argument("--extended-set", type=int, default=20)
    map_p.add_argument("--weight", type=float, default=0.5)
    map_p.add_argument(
        "--keep-swaps",
        action="store_true",
        help="emit swap gates instead of 3-CNOT decompositions",
    )
    map_p.add_argument(
        "--optimize",
        action="store_true",
        help="run peephole optimization on the routed circuit",
    )
    map_p.add_argument(
        "--trace",
        action="store_true",
        help="print the per-pass span tree (wall + cpu time per "
        "pipeline pass, router kernel/step aggregates) to stderr",
    )
    map_p.set_defaults(handler=_cmd_map)

    dev_p = sub.add_parser("devices", help="list built-in devices")
    dev_p.add_argument(
        "--json",
        action="store_true",
        help="emit the registry as JSON (same payload as GET /devices)",
    )
    dev_p.set_defaults(handler=_cmd_devices)

    serve_p = sub.add_parser(
        "serve", help="run the compilation service (HTTP JSON API)"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port",
        type=int,
        default=8711,
        help="TCP port (0 binds a free ephemeral port, printed at startup)",
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="compilation workers (request-level concurrency; one "
        "worker process each under --execution process)",
    )
    serve_p.add_argument(
        "--execution",
        choices=("process", "thread"),
        default="process",
        help="worker tier: 'process' (default) compiles outside the "
        "GIL, one process per worker; 'thread' stays in-process",
    )
    serve_p.add_argument(
        "--mp-start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for the process tier "
        "(default: $REPRO_MP_START_METHOD, then platform default)",
    )
    serve_p.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="admission bound on queued compiles; a full queue answers "
        "429 + Retry-After (pass 0 for unbounded)",
    )
    serve_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-request deadline in seconds, queue wait + "
        "execution (requests may carry their own 'timeout')",
    )
    serve_p.add_argument(
        "--trial-jobs",
        type=int,
        default=0,
        help="cores granted to each compile's best-of-K trial sweep "
        "(sharded hybrid ensembles when > 1; 0 keeps the classic "
        "serial in-worker sweep).  Engine executors rank winners by "
        "the request objective with earliest-seed ties, so do not mix "
        "this flag on and off against one shared store",
    )
    serve_p.add_argument(
        "--store-dir",
        default=".repro-store",
        help="persistent result-store directory; pass '' for memory-only",
    )
    serve_p.add_argument(
        "--memory-entries",
        type=int,
        default=128,
        help="LRU bound of the in-memory store tier",
    )
    serve_p.add_argument(
        "--store-shards",
        type=int,
        default=8,
        help="result-store shard count (fingerprint-prefix sharding)",
    )
    serve_p.add_argument(
        "--no-degrade",
        action="store_true",
        help="disable graceful degradation (by default the server falls "
        "back to the 'fast' preset under queue pressure or repeated "
        "worker loss, stamping degraded=true on affected results)",
    )
    serve_p.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="log requests and print the service stats snapshot "
        "(same payload as GET /stats) on shutdown",
    )
    serve_p.add_argument(
        "--log-json",
        action="store_true",
        help="emit one JSON object per log line (request logs and the "
        "shutdown stats snapshot) for log pipelines",
    )
    serve_p.set_defaults(handler=_cmd_serve)

    store_p = sub.add_parser(
        "store", help="inspect/repair a persistent result store"
    )
    store_sub = store_p.add_subparsers(dest="store_command", required=True)
    scrub_p = store_sub.add_parser(
        "scrub",
        help="verify every stored entry's checksums; optionally "
        "quarantine corrupt entries",
    )
    scrub_p.add_argument(
        "store_dir",
        nargs="?",
        default=".repro-store",
        help="result-store directory (default: .repro-store)",
    )
    scrub_p.add_argument(
        "--repair",
        action="store_true",
        help="move corrupt entries into the store's quarantine/ subtree "
        "and clean tmp droppings (default: report only)",
    )
    scrub_p.add_argument(
        "--json",
        action="store_true",
        help="emit the scrub report as JSON",
    )
    scrub_p.set_defaults(handler=_cmd_store_scrub)

    submit_p = sub.add_parser(
        "submit", help="POST a QASM file to a running repro service"
    )
    submit_p.add_argument("input", help="input OpenQASM 2.0 file")
    submit_p.add_argument(
        "--url", default="http://127.0.0.1:8711", help="service base URL"
    )
    submit_p.add_argument(
        "--device", default="ibm_q20_tokyo", choices=sorted(DEVICE_BUILDERS)
    )
    submit_p.add_argument(
        "--pipeline", default="paper_default", choices=preset_names()
    )
    submit_p.add_argument("--seed", type=int, default=0)
    submit_p.add_argument("--trials", type=int, default=None)
    submit_p.add_argument("--traversals", type=int, default=None)
    submit_p.add_argument(
        "--objective",
        default="g_add",
        choices=("g_add", "depth", "weighted"),
    )
    submit_p.add_argument(
        "-o", "--output", help="routed QASM path (default stdout)"
    )
    submit_p.add_argument("--timeout", type=float, default=120.0)
    submit_p.set_defaults(handler=_cmd_submit)

    draw_p = sub.add_parser("draw", help="draw a circuit or device")
    draw_p.add_argument("input", nargs="?", help="QASM file to draw")
    draw_p.add_argument("--device", help="draw a device instead")
    draw_p.add_argument("--max-columns", type=int, default=0)
    draw_p.set_defaults(handler=_cmd_draw)

    for name, module in (
        ("table2", table2_mod),
        ("fig8", tradeoff_mod),
        ("scaling", scaling_mod),
        ("compare", compare_mod),
    ):
        exp_p = sub.add_parser(
            name, help=f"run the {name} experiment harness", add_help=False
        )
        exp_p.set_defaults(handler=None, forward_to=module)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = build_parser()
    # Forwarded experiment commands pass their remaining args through.
    if argv and argv[0] in ("table2", "fig8", "scaling", "compare"):
        module = {
            "table2": table2_mod,
            "fig8": tradeoff_mod,
            "scaling": scaling_mod,
            "compare": compare_mod,
        }[argv[0]]
        return module.main(argv[1:])
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
