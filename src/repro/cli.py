"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``map`` — compile an OpenQASM 2.0 file for a device and write the
  hardware-compliant QASM (the end-user workflow).
- ``devices`` — list built-in devices with their key properties.
- ``draw`` — render a QASM circuit as ASCII art.
- ``table2`` / ``fig8`` / ``scaling`` — forward to the experiment
  harnesses (same flags as their ``python -m repro.analysis.*`` entry
  points).

Example::

    python -m repro map circuit.qasm --device ibm_q20_tokyo -o mapped.qasm

``map`` fronts the pass-pipeline compiler (:mod:`repro.pipeline`) and
the multi-trial engine (:mod:`repro.engine`): ``--pipeline`` selects a
named preset, ``--noise-aware`` / ``--bridge`` /
``--legalize-directions`` compose extension passes onto it,
``--trials`` sets the best-of-K seed pool, ``--jobs`` fans trials
across worker processes, ``--objective`` picks the winner metric, and
``--verbose`` prints the per-pass timing breakdown recorded in the
result's property set.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import compare as compare_mod
from repro.analysis import scaling as scaling_mod
from repro.analysis import table2 as table2_mod
from repro.analysis import tradeoff as tradeoff_mod
from repro.circuits.depth import circuit_depth
from repro.circuits.transforms import optimize_circuit
from repro.circuits.visualization import draw_circuit, draw_coupling
from repro.core.heuristic import HeuristicConfig
from repro.hardware.devices import DEVICE_BUILDERS, get_device
from repro.hardware.noise import IBM_Q20_TOKYO_NOISE, NoiseModel
from repro.pipeline import (
    NoiseAwareDistance,
    Pipeline,
    compose_pipeline,
    preset_names,
)
from repro.qasm import parse_qasm_file, write_qasm_file


def load_noise_profile(path: str) -> NoiseModel:
    """Build a :class:`NoiseModel` from a JSON profile.

    Format: any :class:`NoiseModel` field, with ``edge_errors`` keyed
    by ``"a,b"`` qubit-pair strings::

        {"two_qubit_error": 0.03, "edge_errors": {"0,1": 0.12, "5,6": 0.08}}
    """
    import json

    with open(path) as handle:
        raw = json.load(handle)
    edge_errors = {}
    for key, rate in raw.pop("edge_errors", {}).items():
        a, b = (int(q) for q in key.split(","))
        edge_errors[(min(a, b), max(a, b))] = float(rate)
    return NoiseModel(edge_errors=edge_errors, **raw)


def _cmd_map(args: argparse.Namespace) -> int:
    circuit = parse_qasm_file(args.input)
    device = get_device(args.device)
    config = HeuristicConfig(
        mode=args.heuristic,
        decay_delta=args.delta,
        extended_set_size=args.extended_set,
        extended_set_weight=args.weight,
        scorer=args.scorer,
    )
    # Extension flags compose passes onto the chosen preset; a bare
    # --pipeline <preset> runs the preset verbatim.
    if args.noise_aware or args.bridge or args.legalize_directions:
        pipeline = compose_pipeline(
            args.pipeline,
            noise_aware=args.noise_aware,
            bridge=args.bridge,
            legalize_directions=args.legalize_directions,
        )
    else:
        pipeline = Pipeline(args.pipeline)
    # Any pipeline containing the noise-aware pass (composed via
    # --noise-aware or baked into the preset) needs a model: the
    # profile file when given, else the chip-average defaults.
    noise = None
    if any(isinstance(p, NoiseAwareDistance) for p in pipeline.passes):
        noise = (
            load_noise_profile(args.noise_profile)
            if args.noise_profile
            else IBM_Q20_TOKYO_NOISE
        )
    # The pipeline upgrades executor=None to the serial engine when a
    # non-default objective needs it; the CLI only decides pool width.
    executor = "process" if args.jobs > 1 else None
    result = pipeline.run(
        circuit,
        device,
        config=config,
        seed=args.seed,
        num_trials=args.trials,
        num_traversals=args.traversals,
        objective=args.objective,
        executor=executor,
        jobs=args.jobs,
        noise=noise,
    )
    physical = result.physical_circuit(decompose_swaps=not args.keep_swaps)
    if args.optimize:
        physical = optimize_circuit(physical)
    print(result.summary(), file=sys.stderr)
    if args.verbose:
        print(f"pipeline     : {pipeline.name}", file=sys.stderr)
        print(result.properties.timing_report(), file=sys.stderr)
    if args.optimize:
        print(
            f"post-optimize  : {physical.count_gates()} gates, depth "
            f"{circuit_depth(physical)}",
            file=sys.stderr,
        )
    if args.output:
        write_qasm_file(physical, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        from repro.qasm import emit_qasm

        sys.stdout.write(emit_qasm(physical))
    return 0


def _cmd_devices(_args: argparse.Namespace) -> int:
    for name in sorted(DEVICE_BUILDERS):
        device = get_device(name)
        symmetric = "symmetric" if device.is_symmetric else "directed"
        print(
            f"{name:16s} {device.num_qubits:3d} qubits  "
            f"{device.num_edges:3d} couplings  diameter "
            f"{device.diameter()}  {symmetric}"
        )
    return 0


def _cmd_draw(args: argparse.Namespace) -> int:
    if args.device:
        print(draw_coupling(get_device(args.device)))
        return 0
    if not args.input:
        print("draw needs a QASM file or --device", file=sys.stderr)
        return 2
    circuit = parse_qasm_file(args.input)
    print(draw_circuit(circuit, max_columns=args.max_columns))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SABRE qubit mapping (ASPLOS 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    map_p = sub.add_parser("map", help="compile a QASM file for a device")
    map_p.add_argument("input", help="input OpenQASM 2.0 file")
    map_p.add_argument(
        "--device", default="ibm_q20_tokyo", choices=sorted(DEVICE_BUILDERS)
    )
    map_p.add_argument("-o", "--output", help="output QASM path (default stdout)")
    map_p.add_argument("--seed", type=int, default=0)
    map_p.add_argument(
        "--pipeline",
        default="paper_default",
        choices=preset_names(),
        help="pass-pipeline preset to execute (default: the paper's flow)",
    )
    map_p.add_argument(
        "--noise-aware",
        action="store_true",
        help="compose the noise-weighted distance pass onto the pipeline "
        "(supply --noise-profile for per-edge rates; without one the "
        "chip-average model normalises back to hop counts and only the "
        "SWAP-cost penalty changes)",
    )
    map_p.add_argument(
        "--noise-profile",
        help="JSON noise profile, e.g. "
        '{"two_qubit_error": 0.03, "edge_errors": {"0,1": 0.12}}',
    )
    map_p.add_argument(
        "--bridge",
        action="store_true",
        help="compose the post-routing SWAP+CNOT -> bridge peephole",
    )
    map_p.add_argument(
        "--legalize-directions",
        action="store_true",
        help="compose CNOT-direction legalisation (directed devices)",
    )
    map_p.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print the per-pass timing breakdown to stderr",
    )
    map_p.add_argument(
        "--trials",
        type=int,
        default=None,
        help="independently seeded compilation trials; best kept "
        "(default: the pipeline preset's, paper: 5)",
    )
    map_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the trials (>1 enables the process "
        "pool executor of repro.engine)",
    )
    map_p.add_argument(
        "--objective",
        default="g_add",
        choices=("g_add", "depth", "weighted"),
        help="trial-winner selection metric (default: paper's g_add)",
    )
    map_p.add_argument("--traversals", type=int, default=None)
    map_p.add_argument(
        "--heuristic", default="decay", choices=("basic", "lookahead", "decay")
    )
    map_p.add_argument(
        "--scorer",
        default="auto",
        choices=("auto", "fast", "reference"),
        help="candidate-SWAP scoring implementation (auto reads "
        "$REPRO_SCORER, defaulting to the fast delta scorer)",
    )
    map_p.add_argument("--delta", type=float, default=0.001)
    map_p.add_argument("--extended-set", type=int, default=20)
    map_p.add_argument("--weight", type=float, default=0.5)
    map_p.add_argument(
        "--keep-swaps",
        action="store_true",
        help="emit swap gates instead of 3-CNOT decompositions",
    )
    map_p.add_argument(
        "--optimize",
        action="store_true",
        help="run peephole optimization on the routed circuit",
    )
    map_p.set_defaults(handler=_cmd_map)

    dev_p = sub.add_parser("devices", help="list built-in devices")
    dev_p.set_defaults(handler=_cmd_devices)

    draw_p = sub.add_parser("draw", help="draw a circuit or device")
    draw_p.add_argument("input", nargs="?", help="QASM file to draw")
    draw_p.add_argument("--device", help="draw a device instead")
    draw_p.add_argument("--max-columns", type=int, default=0)
    draw_p.set_defaults(handler=_cmd_draw)

    for name, module in (
        ("table2", table2_mod),
        ("fig8", tradeoff_mod),
        ("scaling", scaling_mod),
        ("compare", compare_mod),
    ):
        exp_p = sub.add_parser(
            name, help=f"run the {name} experiment harness", add_help=False
        )
        exp_p.set_defaults(handler=None, forward_to=module)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = build_parser()
    # Forwarded experiment commands pass their remaining args through.
    if argv and argv[0] in ("table2", "fig8", "scaling", "compare"):
        module = {
            "table2": table2_mod,
            "fig8": tradeoff_mod,
            "scaling": scaling_mod,
            "compare": compare_mod,
        }[argv[0]]
        return module.main(argv[1:])
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
