"""Compilation-as-a-service: store, scheduler, HTTP server, client.

The serving tier the ROADMAP's production goal calls for, built
entirely on the standard library:

- :mod:`repro.service.request` — content-addressed
  :class:`CompileRequest` (fingerprinted on the parsed gate list,
  device structure, pipeline preset + config, and search knobs) and
  the single :func:`execute_request` compile path.
- :mod:`repro.service.store` — :class:`ResultStore`, a memory-LRU over
  on-disk JSON/QASM persistent tier with atomic writes and counters,
  and :class:`ShardedResultStore`, N of them sharded by fingerprint
  prefix so concurrent dispatchers don't contend on one lock.
- :mod:`repro.service.workers` — :class:`WorkerLane`, the
  process-backed execution tier (one worker process per dispatcher:
  true multicore parallelism, crash isolation, hard timeouts,
  cancellation).
- :mod:`repro.service.scheduler` — :class:`CoalescingScheduler`:
  store-first answering, in-flight dedup of identical requests (with
  priority escalation), a bounded priority dispatcher fleet over the
  thread or process tier, admission backpressure, batch submission.
- :mod:`repro.service.server` — ``ThreadingHTTPServer`` JSON API
  (``POST /compile``, ``POST /batch``, ``GET`` / ``DELETE``
  ``/jobs/<id>``, ``GET /devices``, ``GET /healthz``,
  ``GET /stats``; 429 + ``Retry-After`` under backpressure).
- :mod:`repro.service.client` — :class:`ServiceClient` and helpers for
  the CLI (``repro serve`` / ``repro submit``), examples, benchmarks,
  and CI.
- :mod:`repro.service.faults` — seeded deterministic
  :class:`FaultPlan` injection (worker crash/hang, store bit-rot and
  torn writes, slow dispatch, dropped connections) activated via
  ``REPRO_FAULT_PLAN``; off by default, zero overhead when disabled.

Quickstart::

    from repro.service import build_server, start_in_thread, serve_url
    from repro.service import ServiceClient, shutdown_service

    server = build_server(port=0)          # free ephemeral port
    start_in_thread(server)
    client = ServiceClient(serve_url(server))
    reply = client.compile(qasm_text, device="ibm_q20_tokyo")
    print(reply["result"]["metrics"])      # g_ori / g_add / d_out ...
    shutdown_service(server)
"""

from repro.service.client import (
    ServiceClient,
    ServiceClientError,
    find_free_port,
)
from repro.service.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    activate,
    active_plan,
    deactivate,
    maybe_inject,
)
from repro.service.request import CompileRequest, RequestError, execute_request
from repro.service.scheduler import CoalescingScheduler, Job
from repro.service.server import (
    build_server,
    serve_url,
    shutdown_service,
    start_in_thread,
)
from repro.service.store import ResultStore, ShardedResultStore, StoredResult
from repro.service.workers import (
    JobTimeout,
    LaneStartupError,
    QueueFullError,
    WorkerCrashed,
    WorkerLane,
)

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "activate",
    "active_plan",
    "deactivate",
    "maybe_inject",
    "CompileRequest",
    "RequestError",
    "execute_request",
    "ResultStore",
    "ShardedResultStore",
    "StoredResult",
    "CoalescingScheduler",
    "Job",
    "WorkerLane",
    "WorkerCrashed",
    "LaneStartupError",
    "JobTimeout",
    "QueueFullError",
    "build_server",
    "start_in_thread",
    "shutdown_service",
    "serve_url",
    "ServiceClient",
    "ServiceClientError",
    "find_free_port",
]
