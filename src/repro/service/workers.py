"""Process-backed worker lanes: the service's execution tier.

The PR 5 scheduler ran compiles on its own worker *threads*, so under
concurrent non-identical load the server was GIL-serialized —
effectively single-core no matter how many workers it advertised.
This module gives each scheduler dispatcher a :class:`WorkerLane`: a
single-process :class:`~concurrent.futures.ProcessPoolExecutor` that
executes :func:`repro.service.request.execute_request` outside the
server's GIL.  N dispatchers × one lane each = N truly parallel
compiles on a multicore host.

One process per lane (rather than one shared N-process pool) buys the
properties a serving tier needs and a shared pool cannot give:

- **failure isolation** — a worker process that dies (OOM kill,
  segfault in an extension, ``os._exit``) breaks *its own* lane's pool
  only; the job it was running fails, the lane rebuilds, and sibling
  lanes never notice.  A shared ``ProcessPoolExecutor`` marks itself
  broken and fails every queued future on the first crash.
- **enforceable timeouts and cancellation** — a lane can terminate its
  process to stop a runaway or cancelled compile immediately; a shared
  pool cannot kill one worker without poisoning the rest.

The pickling discipline is the trial engine's
(:mod:`repro.engine.trials` / :mod:`repro.engine.batch`): requests
travel as plain dataclasses of primitives, circuits as the already
parsed :class:`~repro.circuits.circuit.QuantumCircuit`, pipelines by
*preset name*, and results come back as the JSON-native
:class:`~repro.service.store.StoredResult` — no live objects, locks,
or sockets ever cross the process boundary.  Each worker process warms
its own engine cache (device matrices, compile-once flat IR), so a
lane lowers any given circuit/device at most once regardless of how
many jobs it executes.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional

from repro.exceptions import ReproError
from repro.service import faults

#: Environment knob selecting the multiprocessing start method for the
#: worker tier (``fork`` / ``spawn`` / ``forkserver``).  CI runs the
#: service test module under both ``fork`` and ``spawn`` through this.
MP_START_METHOD_ENV = "REPRO_MP_START_METHOD"


#: Seconds a freshly built lane waits for its worker process to prove
#: it survived fork/spawn bootstrap before recycling it.  Normal
#: startup is milliseconds (fork) to a few seconds (spawn cold
#: import); a worker that stays silent this long is wedged.
WORKER_READY_TIMEOUT = 20.0

#: How often a waiting lane re-checks its worker process while blocked
#: on a job future, and how long a dead worker may stay undetected by
#: its pool before the lane declares the crash itself.
WORKER_POLL_SECONDS = 0.25
MISSED_DEATH_GRACE_SECONDS = 1.0

#: Serializes worker-process forks across lanes.  ``fork``-context
#: children inherit every fd open in the parent at fork time; two
#: lanes forking concurrently can interleave inside the window where a
#: sibling's sentinel pipe exists but its child end is not yet closed.
#: The long-lived winner then holds a copy of the loser's sentinel
#: write-end, so when the loser's worker later dies its pool never
#: sees sentinel EOF and never breaks the in-flight future — a
#: permanent hang.  One fork at a time closes the window.
_SPAWN_LOCK = threading.Lock()


class WorkerCrashed(ReproError):
    """The lane's worker process died mid-job (not a Python exception
    inside the compile — those travel back normally)."""


class LaneStartupError(WorkerCrashed):
    """The lane's worker process never finished bootstrapping.

    Forking a worker while other threads run (dispatchers, sibling
    pools' manager and queue-feeder threads) can leave the child
    holding a copy of a lock some other parent thread held at fork
    time; the child then deadlocks before it ever reads the call
    queue.  CPython's on-demand-spawn fix (gh-90622) only guards
    against the executor's *own* threads, so the hazard is inherent
    to rebuilding fork-context pools in a threaded server.  The lane
    watchdog converts it from a permanent hang into this error — a
    crash for retry purposes, but never charged to the job's poison
    count (the job's code was never reached)."""


class JobTimeout(ReproError):
    """The job exceeded its deadline; the lane's process was recycled."""


class QueueFullError(ReproError):
    """Admission rejected: the scheduler's queue is at capacity.

    Carries ``retry_after`` (seconds, an estimate from queue depth and
    recent execution times) for the HTTP layer's ``Retry-After``
    header on the 429 response.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        self.retry_after = retry_after
        super().__init__(message)


def resolve_mp_context(
    start_method: Optional[str] = None,
) -> multiprocessing.context.BaseContext:
    """The multiprocessing context the worker tier should use.

    Explicit argument first, then :data:`MP_START_METHOD_ENV`, then the
    platform default (``fork`` on Linux).  Unknown names raise the
    stdlib's ``ValueError`` listing the valid methods.
    """
    method = start_method or os.environ.get(MP_START_METHOD_ENV) or None
    return multiprocessing.get_context(method)


def apply_worker_fault(token: Optional[str], hard: bool) -> None:
    """The ``worker.execute`` injection seam, shared by both tiers.

    ``token`` is the job fingerprint *plus the attempt number*, so an
    injected crash is transient — the retry's token differs and can
    pass.  ``hard=True`` (inside a worker process) makes ``crash`` a
    real process death (``os._exit``), exactly what an OOM kill or
    segfault looks like from outside; ``hard=False`` (thread tier)
    raises :class:`WorkerCrashed` instead, since exiting would take
    the whole server down.  No-op without an active fault plan.
    """
    rule = faults.maybe_inject(faults.SITE_WORKER, token=token)
    if rule is None:
        return
    if rule.kind == "crash":
        if hard:
            os._exit(13)
        raise WorkerCrashed(
            f"injected worker crash (token {token!r})"
        )
    if rule.kind == "hang":
        time.sleep(rule.param if rule.param > 0 else 3600.0)
    elif rule.kind == "slow":
        time.sleep(rule.param)


def _signal_ready(event) -> None:
    """Pool initializer: the worker announces it survived bootstrap.

    Runs in the worker process right after fork/spawn, before any job.
    A worker stuck in the fork-with-threads deadlock (see
    :class:`LaneStartupError`) never reaches this, which is exactly
    how the lane watchdog detects it.  Also arms ``SIGUSR1`` to dump
    the worker's Python stack to stderr — the operator's (and test
    harness's) window into a wedged worker.
    """
    try:
        import faulthandler
        import signal as _signal

        faulthandler.register(_signal.SIGUSR1, all_threads=True)
    except (ImportError, AttributeError, ValueError, OSError):
        pass  # platform without SIGUSR1 / closed stderr: diagnostics only
    event.set()


def _fail_pending_futures(pool: ProcessPoolExecutor, reason: str) -> None:
    """Resolve any still-pending work-item futures on a discarded pool.

    Normally the executor's manager thread fails these itself when it
    notices the worker died — but a leaked sentinel fd (see
    ``_SPAWN_LOCK``) leaves it blind: the worker's death never reads
    as EOF, the manager stays parked in ``select`` forever, and the
    future never resolves.  Worse, ``shutdown(cancel_futures=True)``
    cannot cancel a *running* future, so the manager would loop with
    pending items for good and hang interpreter exit on its atexit
    join.  Failing the futures here lets callers unblock and the
    manager drain regardless.  Racing the manager is safe: both sides
    ``pop`` before resolving, so each future is settled exactly once.
    """
    items = getattr(pool, "_pending_work_items", None)
    if not items:
        return
    for work_id in list(items):
        item = items.pop(work_id, None)
        if item is None:
            continue
        try:
            if not item.future.done():
                item.future.set_exception(BrokenProcessPool(reason))
        except Exception:  # pragma: no cover — manager resolved it first
            pass


def _execute_in_process(compile_fn: Callable, request, circuit, key,
                        fault_token=None, trial_jobs=None, trace_ctx=None):
    """Worker-process entry point (module-level so it pickles).

    ``compile_fn`` travels by reference (production:
    :func:`repro.service.request.execute_request`); the request,
    circuit, and fingerprint are the exact payload the thread tier
    hands its in-process executor.  ``fault_token`` keys the
    ``worker.execute`` injection seam; fault plans reach spawned
    workers via the ``REPRO_FAULT_PLAN`` environment variable.
    ``trial_jobs`` (the lane's multi-core sweep grant) is forwarded
    only when set, so injected ``compile_fn`` stand-ins without the
    parameter keep working on default-configured lanes.

    ``trace_ctx`` — ``(trace_id, parent_span_id, profile?)`` — carries
    trace collection across the process boundary.  When set, the
    worker builds its own tracer, records a ``worker.compile`` span
    (and, with ``profile``, router-step aggregates) plus every
    pipeline-pass span under the scheduler's parent span, and the
    return value becomes ``(result, serialized_span_batch)``.  When
    ``None`` (the untraced fast path and every pre-telemetry caller)
    the return value is the bare result, unchanged.
    """
    apply_worker_fault(fault_token, hard=True)
    if trace_ctx is None:
        if trial_jobs is None:
            return compile_fn(request, circuit=circuit, key=key)
        return compile_fn(request, circuit=circuit, key=key,
                          trial_jobs=trial_jobs)
    from repro.telemetry.profile import profiled_routing
    from repro.telemetry.trace import Tracer, span, tracing

    trace_id, parent_id, profile = trace_ctx
    tracer = Tracer(trace_id)
    with tracing(tracer, parent_id=parent_id):
        with span("worker.compile") as compile_span:
            compile_span.set("pid", os.getpid())
            if profile:
                with profiled_routing() as profiler:
                    if trial_jobs is None:
                        result = compile_fn(request, circuit=circuit, key=key)
                    else:
                        result = compile_fn(request, circuit=circuit,
                                            key=key, trial_jobs=trial_jobs)
                if not profiler.empty:
                    tracer.add_raw(
                        "router.profile",
                        compile_span.span_id,
                        start=time.time(),
                        wall_seconds=profiler.kernel_seconds,
                        attrs=profiler.to_dict(),
                    )
            elif trial_jobs is None:
                result = compile_fn(request, circuit=circuit, key=key)
            else:
                result = compile_fn(request, circuit=circuit, key=key,
                                    trial_jobs=trial_jobs)
    return result, tracer.export()


class WorkerLane:
    """One dispatcher's private single-process executor.

    The pool is built lazily (first job) and rebuilt after any crash,
    timeout, or kill — a lane is never left broken.  ``kill`` is safe
    to call from another thread while ``run`` blocks on the future:
    terminating the process breaks the pool, ``run`` observes
    :class:`BrokenProcessPool`, and the *caller* classifies it as a
    cancellation (it asked) or a crash (it didn't).
    """

    def __init__(
        self,
        compile_fn: Callable,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
        ready_timeout: float = WORKER_READY_TIMEOUT,
        trial_jobs: Optional[int] = None,
    ) -> None:
        self.compile_fn = compile_fn
        #: Cores granted to each compile's best-of-K trial fan-out
        #: (``None`` keeps the serial in-worker sweep).
        self.trial_jobs = trial_jobs
        self.mp_context = (
            mp_context if mp_context is not None else resolve_mp_context()
        )
        self.ready_timeout = ready_timeout
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._ready = None
        self._ready_confirmed = False
        #: Lifetime count of pool rebuilds after crash/timeout/kill.
        self.restarts = 0

    # ------------------------------------------------------------------

    def run(
        self,
        request,
        circuit,
        key,
        timeout: Optional[float] = None,
        fault_token: Optional[str] = None,
        trace_ctx=None,
    ):
        """Execute one job in the lane's process; block for the result.

        Raises :class:`JobTimeout` after ``timeout`` seconds (the
        worker process is terminated and the pool rebuilt lazily) and
        :class:`WorkerCrashed` if the process dies.  Exceptions raised
        *inside* the compile propagate unchanged, exactly like the
        thread tier.  ``fault_token`` keys the in-worker injection
        seam (chaos testing; ``None`` outside fault runs).

        ``trace_ctx`` (``(trace_id, parent_span_id, profile?)``) ships
        trace collection into the worker; when set, the return value
        is ``(result, serialized_span_batch)`` — see
        :func:`_execute_in_process`.
        """
        with self._lock:
            fresh = self._pool is None or not self._ready_confirmed
        if fresh:
            # A fresh pool forks its worker inside the first submit;
            # serialize that window across lanes (see _SPAWN_LOCK).
            _SPAWN_LOCK.acquire()
        try:
            with self._lock:
                if self._pool is None:
                    self._ready = self.mp_context.Event()
                    self._ready_confirmed = False
                    self._pool = ProcessPoolExecutor(
                        max_workers=1,
                        mp_context=self.mp_context,
                        initializer=_signal_ready,
                        initargs=(self._ready,),
                    )
                pool = self._pool
                ready = self._ready
                confirmed = self._ready_confirmed
                try:
                    future = pool.submit(
                        _execute_in_process,
                        self.compile_fn,
                        request,
                        circuit,
                        key,
                        fault_token,
                        self.trial_jobs,
                        trace_ctx,
                    )
                except BrokenProcessPool as exc:
                    self._discard_pool(pool)
                    raise WorkerCrashed(
                        f"worker pool broken: {exc}"
                    ) from None
        finally:
            if fresh:
                _SPAWN_LOCK.release()
        if not confirmed:
            # Startup watchdog: the first job on a fresh pool also
            # proves the worker process came up at all.  A silent
            # worker is wedged (fork-with-threads deadlock, see
            # LaneStartupError) — recycle it rather than blocking this
            # dispatcher forever.
            if ready is not None and not ready.wait(self.ready_timeout):
                self.kill()
                raise LaneStartupError(
                    f"worker process failed to start within "
                    f"{self.ready_timeout:.0f}s; process recycled"
                )
            with self._lock:
                if self._pool is pool:
                    self._ready_confirmed = True
        # Liveness-checking wait.  A plain blocking ``result()`` trusts
        # the pool's manager thread to notice the worker's death — but
        # a sentinel fd leaked into a sibling's child (see _SPAWN_LOCK)
        # blinds it permanently.  Short polls let the lane observe the
        # dead process itself and convert the miss into an ordinary
        # crash instead of an unbounded hang.
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        dead_since = None
        while True:
            wait = WORKER_POLL_SECONDS
            if deadline is not None:
                wait = min(wait, deadline - time.monotonic())
            try:
                return future.result(timeout=max(wait, 0.001))
            except FutureTimeoutError:
                if deadline is not None and time.monotonic() >= deadline:
                    self.kill()
                    raise JobTimeout(
                        f"compile exceeded its {timeout:.3f}s deadline; "
                        "worker process recycled"
                    ) from None
                procs = list(getattr(pool, "_processes", {}).values())
                if procs and not any(p.is_alive() for p in procs):
                    if dead_since is None:
                        dead_since = time.monotonic()
                    elif (time.monotonic() - dead_since
                          >= MISSED_DEATH_GRACE_SECONDS):
                        with self._lock:
                            self._discard_pool(pool)
                        raise WorkerCrashed(
                            "worker process died but its pool never "
                            "noticed (leaked sentinel fd); pool recycled"
                        ) from None
                else:
                    dead_since = None
            except BrokenProcessPool as exc:
                with self._lock:
                    self._discard_pool(pool)
                raise WorkerCrashed(
                    f"worker process died mid-compile: {exc}"
                ) from None

    def pids(self) -> List[int]:
        """PIDs of the lane's live worker processes (shutdown-hygiene
        assertions: after ``shutdown`` these must all be gone)."""
        with self._lock:
            pool = self._pool
            if pool is None:
                return []
            return [
                process.pid
                for process in getattr(pool, "_processes", {}).values()
                if process.pid is not None and process.is_alive()
            ]

    def kill(self) -> None:
        """Terminate the lane's worker process (cancellation/timeout).

        The in-flight future (if any) fails with ``BrokenProcessPool``;
        the next ``run`` builds a fresh pool.
        """
        with self._lock:
            pool = self._pool
            if pool is None:
                return
            # Private-attribute access is deliberate: ProcessPoolExecutor
            # offers no public way to stop a running call, and letting
            # an abandoned compile burn a core to completion defeats
            # cancellation.  Guarded so a stdlib layout change degrades
            # to "result discarded" instead of crashing the server.
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.terminate()
                except OSError:  # pragma: no cover — already gone
                    pass
            self._discard_pool(pool)

    def shutdown(self) -> None:
        """Dispose of the pool at scheduler shutdown (idempotent).

        Terminates any still-live worker process first:
        ``pool.shutdown(wait=False)`` alone would leave a hung or
        mid-compile worker running as an orphan after the scheduler is
        gone — the exact leak chaos shutdown tests assert against.
        """
        with self._lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.terminate()
                except OSError:  # pragma: no cover — already gone
                    pass
            _fail_pending_futures(pool, "worker pool shut down")
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Drop ``pool`` (lock held by caller or irrelevant) and count
        the restart the next ``run`` will perform."""
        if self._pool is pool:
            self._pool = None
            self.restarts += 1
        _fail_pending_futures(pool, "worker pool discarded")
        pool.shutdown(wait=False, cancel_futures=True)
