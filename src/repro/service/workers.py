"""Process-backed worker lanes: the service's execution tier.

The PR 5 scheduler ran compiles on its own worker *threads*, so under
concurrent non-identical load the server was GIL-serialized —
effectively single-core no matter how many workers it advertised.
This module gives each scheduler dispatcher a :class:`WorkerLane`: a
single-process :class:`~concurrent.futures.ProcessPoolExecutor` that
executes :func:`repro.service.request.execute_request` outside the
server's GIL.  N dispatchers × one lane each = N truly parallel
compiles on a multicore host.

One process per lane (rather than one shared N-process pool) buys the
properties a serving tier needs and a shared pool cannot give:

- **failure isolation** — a worker process that dies (OOM kill,
  segfault in an extension, ``os._exit``) breaks *its own* lane's pool
  only; the job it was running fails, the lane rebuilds, and sibling
  lanes never notice.  A shared ``ProcessPoolExecutor`` marks itself
  broken and fails every queued future on the first crash.
- **enforceable timeouts and cancellation** — a lane can terminate its
  process to stop a runaway or cancelled compile immediately; a shared
  pool cannot kill one worker without poisoning the rest.

The pickling discipline is the trial engine's
(:mod:`repro.engine.trials` / :mod:`repro.engine.batch`): requests
travel as plain dataclasses of primitives, circuits as the already
parsed :class:`~repro.circuits.circuit.QuantumCircuit`, pipelines by
*preset name*, and results come back as the JSON-native
:class:`~repro.service.store.StoredResult` — no live objects, locks,
or sockets ever cross the process boundary.  Each worker process warms
its own engine cache (device matrices, compile-once flat IR), so a
lane lowers any given circuit/device at most once regardless of how
many jobs it executes.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional

from repro.exceptions import ReproError

#: Environment knob selecting the multiprocessing start method for the
#: worker tier (``fork`` / ``spawn`` / ``forkserver``).  CI runs the
#: service test module under both ``fork`` and ``spawn`` through this.
MP_START_METHOD_ENV = "REPRO_MP_START_METHOD"


class WorkerCrashed(ReproError):
    """The lane's worker process died mid-job (not a Python exception
    inside the compile — those travel back normally)."""


class JobTimeout(ReproError):
    """The job exceeded its deadline; the lane's process was recycled."""


class QueueFullError(ReproError):
    """Admission rejected: the scheduler's queue is at capacity.

    Carries ``retry_after`` (seconds, an estimate from queue depth and
    recent execution times) for the HTTP layer's ``Retry-After``
    header on the 429 response.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        self.retry_after = retry_after
        super().__init__(message)


def resolve_mp_context(
    start_method: Optional[str] = None,
) -> multiprocessing.context.BaseContext:
    """The multiprocessing context the worker tier should use.

    Explicit argument first, then :data:`MP_START_METHOD_ENV`, then the
    platform default (``fork`` on Linux).  Unknown names raise the
    stdlib's ``ValueError`` listing the valid methods.
    """
    method = start_method or os.environ.get(MP_START_METHOD_ENV) or None
    return multiprocessing.get_context(method)


def _execute_in_process(compile_fn: Callable, request, circuit, key):
    """Worker-process entry point (module-level so it pickles).

    ``compile_fn`` travels by reference (production:
    :func:`repro.service.request.execute_request`); the request,
    circuit, and fingerprint are the exact payload the thread tier
    hands its in-process executor.
    """
    return compile_fn(request, circuit=circuit, key=key)


class WorkerLane:
    """One dispatcher's private single-process executor.

    The pool is built lazily (first job) and rebuilt after any crash,
    timeout, or kill — a lane is never left broken.  ``kill`` is safe
    to call from another thread while ``run`` blocks on the future:
    terminating the process breaks the pool, ``run`` observes
    :class:`BrokenProcessPool`, and the *caller* classifies it as a
    cancellation (it asked) or a crash (it didn't).
    """

    def __init__(
        self,
        compile_fn: Callable,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
    ) -> None:
        self.compile_fn = compile_fn
        self.mp_context = (
            mp_context if mp_context is not None else resolve_mp_context()
        )
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Lifetime count of pool rebuilds after crash/timeout/kill.
        self.restarts = 0

    # ------------------------------------------------------------------

    def run(self, request, circuit, key, timeout: Optional[float] = None):
        """Execute one job in the lane's process; block for the result.

        Raises :class:`JobTimeout` after ``timeout`` seconds (the
        worker process is terminated and the pool rebuilt lazily) and
        :class:`WorkerCrashed` if the process dies.  Exceptions raised
        *inside* the compile propagate unchanged, exactly like the
        thread tier.
        """
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=1, mp_context=self.mp_context
                )
            pool = self._pool
            try:
                future = pool.submit(
                    _execute_in_process, self.compile_fn, request, circuit, key
                )
            except BrokenProcessPool as exc:
                self._discard_pool(pool)
                raise WorkerCrashed(f"worker pool broken: {exc}") from None
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            self.kill()
            raise JobTimeout(
                f"compile exceeded its {timeout:.3f}s deadline; "
                "worker process recycled"
            ) from None
        except BrokenProcessPool as exc:
            with self._lock:
                self._discard_pool(pool)
            raise WorkerCrashed(
                f"worker process died mid-compile: {exc}"
            ) from None

    def kill(self) -> None:
        """Terminate the lane's worker process (cancellation/timeout).

        The in-flight future (if any) fails with ``BrokenProcessPool``;
        the next ``run`` builds a fresh pool.
        """
        with self._lock:
            pool = self._pool
            if pool is None:
                return
            # Private-attribute access is deliberate: ProcessPoolExecutor
            # offers no public way to stop a running call, and letting
            # an abandoned compile burn a core to completion defeats
            # cancellation.  Guarded so a stdlib layout change degrades
            # to "result discarded" instead of crashing the server.
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.terminate()
                except OSError:  # pragma: no cover — already gone
                    pass
            self._discard_pool(pool)

    def shutdown(self) -> None:
        """Dispose of the pool at scheduler shutdown (idempotent)."""
        with self._lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Drop ``pool`` (lock held by caller or irrelevant) and count
        the restart the next ``run`` will perform."""
        if self._pool is pool:
            self._pool = None
            self.restarts += 1
        pool.shutdown(wait=False, cancel_futures=True)
