"""The service's unit of work: a validated, fingerprintable request.

A compilation request is *content-addressed*: two requests that would
provably produce the same artifact — same circuit gate list, same
device structure, same pipeline preset and heuristic configuration,
same seed/trial/objective settings — share one fingerprint, and
therefore one store entry and one in-flight computation.  The
fingerprint is computed from the *parsed* circuit, not the QASM text,
so whitespace, comments, and register-name differences between two
submissions of the same circuit still coalesce.

:func:`execute_request` is the single compile path every scheduler
worker runs: parse -> shared device -> named pipeline -> routed QASM +
JSON-safe metrics, packaged as a :class:`~repro.service.store.StoredResult`.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.metrics import json_safe_properties, result_metrics
from repro.circuits.circuit import QuantumCircuit
from repro.core.heuristic import MODES, HeuristicConfig
from repro.engine.cache import coupling_fingerprint, get_cached_device
from repro.engine.trials import OBJECTIVES, PROPERTY_OBJECTIVE_PREFIX
from repro.exceptions import ReproError
from repro.pipeline.presets import get_preset
from repro.qasm import emit_qasm, parse_qasm

#: HeuristicConfig fields a request may override, with their types.
#: Kept explicit (rather than introspected) so the wire format is a
#: deliberate, documented surface.
CONFIG_FIELDS: Dict[str, type] = {
    "mode": str,
    "extended_set_size": int,
    "extended_set_weight": float,
    "decay_delta": float,
    "decay_reset_interval": int,
    "swap_cost_penalty": float,
}


class RequestError(ReproError):
    """A malformed or unsatisfiable compilation request.

    The HTTP layer maps this (and any :class:`ReproError` raised while
    parsing the request body) to a 400 response.
    """


@dataclass(frozen=True)
class CompileRequest:
    """One compilation the service has been asked to perform.

    Attributes:
        qasm: OpenQASM 2.0 source of the logical circuit.
        device: named device in the registry
            (:data:`repro.hardware.devices.DEVICE_BUILDERS`).
        pipeline: pass-pipeline preset name
            (:func:`repro.pipeline.presets.preset_names`).
        seed: base seed of the best-of-K trial pool.
        num_trials / num_traversals: search fan-out; ``None`` defers to
            the preset's defaults (paper: 5 trials, 3 traversals).
        objective: trial-winner selection metric.
        config: HeuristicConfig overrides (see :data:`CONFIG_FIELDS`).
    """

    qasm: str
    device: str = "ibm_q20_tokyo"
    pipeline: str = "paper_default"
    seed: int = 0
    num_trials: Optional[int] = None
    num_traversals: Optional[int] = None
    objective: str = "g_add"
    config: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    # Construction / validation
    # ------------------------------------------------------------------

    @classmethod
    def from_payload(cls, payload: object) -> "CompileRequest":
        """Build a validated request from a decoded JSON body.

        Accepted keys: ``qasm`` (required), ``device``, ``pipeline``,
        ``seed``, ``trials``, ``traversals``, ``objective``, ``config``.
        Unknown keys are rejected so client typos fail loudly instead of
        silently compiling with defaults.
        """
        if not isinstance(payload, dict):
            raise RequestError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        # ``priority``/``timeout`` (scheduling) and ``trace``/``profile``
        # (telemetry) are knobs consumed by the HTTP layer — they are
        # never dataclass fields, so they can never leak into the
        # fingerprint and split the content-addressed store; accepted
        # here so batch items carrying them validate cleanly.
        known = {
            "qasm", "device", "pipeline", "seed", "trials", "traversals",
            "objective", "config", "priority", "timeout", "trace",
            "profile",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise RequestError(
                f"unknown request field(s) {unknown}; accepted: {sorted(known)}"
            )
        qasm = payload.get("qasm")
        if not isinstance(qasm, str) or not qasm.strip():
            raise RequestError("request needs a non-empty 'qasm' string")

        def _int(key: str, default: Optional[int]) -> Optional[int]:
            value = payload.get(key, default)
            if value is None:
                return None
            if isinstance(value, bool) or not isinstance(value, int):
                raise RequestError(f"field {key!r} must be an integer")
            return value

        config_raw = payload.get("config") or {}
        if not isinstance(config_raw, dict):
            raise RequestError("field 'config' must be a JSON object")
        config_items = []
        for key in sorted(config_raw):
            if key not in CONFIG_FIELDS:
                raise RequestError(
                    f"unknown config field {key!r}; "
                    f"accepted: {sorted(CONFIG_FIELDS)}"
                )
            try:
                config_items.append((key, CONFIG_FIELDS[key](config_raw[key])))
            except (TypeError, ValueError):
                raise RequestError(
                    f"config field {key!r} must be of type "
                    f"{CONFIG_FIELDS[key].__name__}, got {config_raw[key]!r}"
                ) from None

        request = cls(
            qasm=qasm,
            device=str(payload.get("device", "ibm_q20_tokyo")),
            pipeline=str(payload.get("pipeline", "paper_default")),
            seed=_int("seed", 0),
            num_trials=_int("trials", None),
            num_traversals=_int("traversals", None),
            objective=str(payload.get("objective", "g_add")),
            config=tuple(config_items),
        )
        request.validate()
        return request

    def validate(self) -> None:
        """Cheap structural checks (no QASM parse, no device build)."""
        get_preset(self.pipeline)  # raises with the available names
        if (
            self.objective not in OBJECTIVES
            and not self.objective.startswith(PROPERTY_OBJECTIVE_PREFIX)
        ):
            raise RequestError(
                f"unknown objective {self.objective!r}; available: "
                f"{sorted(OBJECTIVES)} or '{PROPERTY_OBJECTIVE_PREFIX}<key>'"
            )
        if self.num_trials is not None and self.num_trials < 1:
            raise RequestError("trials must be >= 1")
        if self.num_traversals is not None and self.num_traversals < 1:
            raise RequestError("traversals must be >= 1")
        config = dict(self.config)
        mode = config.get("mode")
        if mode is not None and mode not in MODES:
            raise RequestError(
                f"unknown heuristic mode {mode!r}; available: {sorted(MODES)}"
            )

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------

    def parsed_circuit(self) -> QuantumCircuit:
        """The request's circuit, parsed fresh (QASM errors surface here)."""
        return parse_qasm(self.qasm)

    def fingerprint(self, circuit: Optional[QuantumCircuit] = None) -> str:
        """Content address of this request (sha256 hex digest).

        Keyed on the parsed gate list — not the QASM bytes — plus the
        device's *structural* fingerprint (so a renamed but identical
        topology still hits) and every knob that can change the output:
        pipeline preset, heuristic config, seed, trials, traversals,
        objective.  The circuit name is deliberately excluded: it decides
        the routed circuit's *name*, not its gates, and the response
        carries the name outside the artifact key.
        """
        if circuit is None:
            circuit = self.parsed_circuit()
        coupling = get_cached_device(self.device)
        parts = (
            "repro-service-v1",
            (circuit.num_qubits, circuit.num_clbits, circuit.gates),
            coupling_fingerprint(coupling),
            self.pipeline,
            self.config,
            self.seed,
            self.num_trials,
            self.num_traversals,
            self.objective,
        )
        return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()

    def summary(self) -> Dict[str, object]:
        """JSON-safe echo of the request (minus the QASM body)."""
        return {
            "device": self.device,
            "pipeline": self.pipeline,
            "seed": self.seed,
            "trials": self.num_trials,
            "traversals": self.num_traversals,
            "objective": self.objective,
            "config": dict(self.config),
        }

    def heuristic_config(self) -> Optional[HeuristicConfig]:
        """The request's HeuristicConfig, or ``None`` for paper defaults."""
        if not self.config:
            return None
        return HeuristicConfig(**dict(self.config))


def trial_executor_decision(request: CompileRequest, trial_jobs: int):
    """The multi-trial executor a lane with ``trial_jobs`` cores runs.

    Returns an :class:`~repro.engine.shared.ExecutorDecision`, or
    ``None`` when the request's effective trial count is 1 (nothing to
    fan out — the default serial path stays).  Deterministic in the
    request and ``trial_jobs`` (the host's core count is deliberately
    *not* consulted), so every lane of every replica makes the same
    choice for the same request.
    """
    from repro.engine.ensemble import ensemble_eligible
    from repro.engine.shared import choose_executor
    from repro.pipeline.runner import get_pipeline

    pipe = get_pipeline(request.pipeline)
    num_trials = request.num_trials
    if num_trials is None:
        num_trials = pipe.defaults.get("num_trials", 5)
    if num_trials is None or num_trials <= 1:
        return None
    eligible = ensemble_eligible(
        request.pipeline, request.heuristic_config(), None
    )
    return choose_executor(
        num_trials, cores=trial_jobs, eligible=eligible
    )


def execute_request(
    request: CompileRequest,
    circuit: Optional[QuantumCircuit] = None,
    key: Optional[str] = None,
    trial_jobs: Optional[int] = None,
):
    """Run one request through its pipeline; return a StoredResult.

    This is the only place the service actually compiles.  By default
    requests run on the serial engine path (``executor=None``): the
    scheduler's worker pool already provides request-level concurrency,
    and nesting a process pool inside every worker thread would
    oversubscribe the host for no quality gain.

    ``trial_jobs`` is the opt-in multi-core sweep knob (``repro serve
    --trial-jobs N``): it grants each compile that many cores for its
    best-of-K fan-out, routed through the engine's executor chooser
    (hybrid sharded ensembles when eligible and ``N > 1``).  Note the
    engine executors rank trial winners by the request's objective
    with earliest-seed ties, whereas the default in-search path ranks
    by ``(num_swaps, depth)`` — all engine executors agree with each
    other, so results stay deterministic for a given ``trial_jobs``
    setting, but a deployment should not mix ``trial_jobs`` on and off
    against one shared store.

    ``circuit`` and ``key`` accept the parse and fingerprint the
    scheduler already performed at submission, so a scheduled compile
    never repeats that work; both are recomputed when omitted (direct
    library use).
    """
    from repro.pipeline.runner import get_pipeline
    from repro.service.store import StoredResult
    from repro.telemetry.trace import span

    started = time.perf_counter()
    if circuit is None:
        circuit = request.parsed_circuit()
    coupling = get_cached_device(request.device)
    executor = None
    jobs = None
    if trial_jobs is not None and trial_jobs >= 1:
        decision = trial_executor_decision(request, trial_jobs)
        if decision is not None:
            executor = decision.executor
            jobs = decision.jobs
    with span("request.execute") as exec_span:
        exec_span.set("device", request.device)
        exec_span.set("pipeline", request.pipeline)
        result = get_pipeline(request.pipeline).run(
            circuit,
            coupling,
            config=request.heuristic_config(),
            seed=request.seed,
            num_trials=request.num_trials,
            num_traversals=request.num_traversals,
            objective=request.objective,
            executor=executor,
            jobs=jobs,
        )
        routed = result.physical_circuit(decompose_swaps=True)
    return StoredResult(
        key=key if key is not None else request.fingerprint(circuit),
        routed_qasm=emit_qasm(routed),
        metrics=result_metrics(result),
        properties=json_safe_properties(result.properties),
        request=request.summary(),
        compile_seconds=time.perf_counter() - started,
        created_at=time.time(),
    )
