"""Stdlib HTTP client for the compilation service.

``ServiceClient`` wraps :mod:`urllib.request` so examples, benchmarks,
the ``repro submit`` CLI, and CI smoke steps can drive a running server
without any dependency beyond the standard library.  Error contract:
non-2xx responses raise :class:`ServiceClientError` carrying the HTTP
status and the server's ``error`` message.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.exceptions import ReproError


class ServiceClientError(ReproError):
    """A request the server rejected (or could not be reached)."""

    def __init__(self, message: str, status: int = 0) -> None:
        self.status = status
        super().__init__(message)


def find_free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (for tests/benchmarks/CI)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


class ServiceClient:
    """Typed wrapper over the service's JSON endpoints.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8711"`` (no trailing slash
            needed).
        timeout: per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
                message = body.get("error") or json.dumps(body)
            except Exception:  # noqa: BLE001 — best-effort body decode
                message = exc.reason
            raise ServiceClientError(
                f"{method} {path} -> {exc.code}: {message}", status=exc.code
            ) from None
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceClientError(
                f"{method} {path} failed: {exc}"
            ) from None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def compile(
        self,
        qasm: str,
        device: str = "ibm_q20_tokyo",
        pipeline: str = "paper_default",
        seed: int = 0,
        trials: Optional[int] = None,
        traversals: Optional[int] = None,
        objective: str = "g_add",
        config: Optional[Dict[str, object]] = None,
        wait: bool = True,
        priority: int = 0,
    ) -> Dict[str, object]:
        """``POST /compile``; returns the finished job snapshot (or the
        202 acknowledgement when ``wait=False``)."""
        payload: Dict[str, object] = {
            "qasm": qasm,
            "device": device,
            "pipeline": pipeline,
            "seed": seed,
            "objective": objective,
            "wait": wait,
            "priority": priority,
        }
        if trials is not None:
            payload["trials"] = trials
        if traversals is not None:
            payload["traversals"] = traversals
        if config:
            payload["config"] = config
        return self._request("POST", "/compile", payload)

    def batch(
        self,
        requests: List[Dict[str, object]],
        wait: bool = True,
        priority: int = 0,
    ) -> Dict[str, object]:
        """``POST /batch`` with raw request dicts."""
        return self._request(
            "POST",
            "/batch",
            {"requests": requests, "wait": wait, "priority": priority},
        )

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/jobs/{job_id}")

    def devices(self) -> List[Dict[str, object]]:
        return self._request("GET", "/devices")["devices"]

    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/stats")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def wait_until_healthy(self, timeout: float = 15.0) -> Dict[str, object]:
        """Poll ``/healthz`` until the server answers (startup races)."""
        deadline = time.monotonic() + timeout
        last_error: Optional[ServiceClientError] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except ServiceClientError as exc:
                last_error = exc
                time.sleep(0.05)
        raise ServiceClientError(
            f"server at {self.base_url} not healthy within {timeout}s "
            f"(last error: {last_error})"
        )

    def wait_for_job(
        self, job_id: str, timeout: float = 120.0
    ) -> Dict[str, object]:
        """Poll ``GET /jobs/<id>`` until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            snapshot = self.job(job_id)
            if snapshot.get("state") in ("done", "failed"):
                return snapshot
            time.sleep(0.05)
        raise ServiceClientError(
            f"job {job_id} did not finish within {timeout}s"
        )
