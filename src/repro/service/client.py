"""Stdlib HTTP client for the compilation service.

``ServiceClient`` wraps :mod:`urllib.request` so examples, benchmarks,
the ``repro submit`` CLI, and CI smoke steps can drive a running server
without any dependency beyond the standard library.  Error contract:
non-2xx responses raise :class:`ServiceClientError` carrying the HTTP
status and the server's ``error`` message.
"""

from __future__ import annotations

import json
import random
import socket
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ReproError


class ServiceClientError(ReproError):
    """A request the server rejected (or could not be reached).

    ``retry_after`` carries the server's ``Retry-After`` header
    (seconds) on 429 responses, ``None`` otherwise — polling helpers
    honour it instead of their own backoff schedule.  ``attempts`` is
    how many transport attempts were made before giving up (> 1 when
    connection-level retries were exhausted).
    """

    def __init__(
        self,
        message: str,
        status: int = 0,
        retry_after: Optional[float] = None,
        attempts: int = 1,
    ) -> None:
        self.status = status
        self.retry_after = retry_after
        self.attempts = attempts
        super().__init__(message)


def find_free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (for tests/benchmarks/CI)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


class ServiceClient:
    """Typed wrapper over the service's JSON endpoints.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8711"`` (no trailing slash
            needed).
        timeout: per-request socket timeout in seconds.
    """

    #: Connection-level retry policy: every service request is
    #: content-addressed (a re-submitted compile coalesces or hits the
    #: store; polls and lookups are pure reads), so retrying on a
    #: dropped/refused connection is always safe.  Capped jittered
    #: exponential backoff, bounded both by attempt count and by a
    #: total time budget.
    CONNECT_ATTEMPTS = 4
    CONNECT_BACKOFF_BASE = 0.05
    CONNECT_BACKOFF_MAX = 1.0
    CONNECT_RETRY_BUDGET = 5.0

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        budget_deadline = time.monotonic() + self.CONNECT_RETRY_BUDGET
        attempt = 0
        while True:
            attempt += 1
            request = urllib.request.Request(
                url, data=data, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as resp:
                    return json.loads(resp.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                # The server answered: its verdict is final (4xx/5xx
                # are never transport flakes) — no retry.
                try:
                    body = json.loads(exc.read().decode("utf-8"))
                    message = body.get("error") or json.dumps(body)
                except Exception:  # noqa: BLE001 — best-effort body decode
                    message = exc.reason
                retry_after = None
                header = (
                    exc.headers.get("Retry-After") if exc.headers else None
                )
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
                raise ServiceClientError(
                    f"{method} {path} -> {exc.code}: {message}",
                    status=exc.code,
                    retry_after=retry_after,
                    attempts=attempt,
                ) from None
            except (urllib.error.URLError, OSError) as exc:
                # Connection-level failure (refused, reset, dropped
                # mid-response): retry with jittered backoff until the
                # attempt cap or the time budget runs out.
                delay = min(
                    self.CONNECT_BACKOFF_BASE * (2 ** (attempt - 1)),
                    self.CONNECT_BACKOFF_MAX,
                ) * (0.5 + random.random() / 2)
                if (
                    attempt >= self.CONNECT_ATTEMPTS
                    or time.monotonic() + delay >= budget_deadline
                ):
                    raise ServiceClientError(
                        f"{method} {path} failed after {attempt} "
                        f"attempt(s): {exc}",
                        attempts=attempt,
                    ) from None
                time.sleep(delay)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def compile(
        self,
        qasm: str,
        device: str = "ibm_q20_tokyo",
        pipeline: str = "paper_default",
        seed: int = 0,
        trials: Optional[int] = None,
        traversals: Optional[int] = None,
        objective: str = "g_add",
        config: Optional[Dict[str, object]] = None,
        wait: bool = True,
        priority: int = 0,
    ) -> Dict[str, object]:
        """``POST /compile``; returns the finished job snapshot (or the
        202 acknowledgement when ``wait=False``)."""
        payload: Dict[str, object] = {
            "qasm": qasm,
            "device": device,
            "pipeline": pipeline,
            "seed": seed,
            "objective": objective,
            "wait": wait,
            "priority": priority,
        }
        if trials is not None:
            payload["trials"] = trials
        if traversals is not None:
            payload["traversals"] = traversals
        if config:
            payload["config"] = config
        return self._request("POST", "/compile", payload)

    def batch(
        self,
        requests: List[Dict[str, object]],
        wait: bool = True,
        priority: int = 0,
    ) -> Dict[str, object]:
        """``POST /batch`` with raw request dicts."""
        return self._request(
            "POST",
            "/batch",
            {"requests": requests, "wait": wait, "priority": priority},
        )

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel_job(self, job_id: str) -> Dict[str, object]:
        """``DELETE /jobs/<id>``; returns the job snapshot with a
        ``cancelled`` flag.  Raises with status 409 when the job was
        already finished or could not be interrupted."""
        return self._request("DELETE", f"/jobs/{job_id}")

    def devices(self) -> List[Dict[str, object]]:
        return self._request("GET", "/devices")["devices"]

    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/stats")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    #: Backoff schedule shared by the polling helpers: start fast (a
    #: healthy server or a short compile answers in tens of ms), double
    #: each round, never exceed the cap — long compiles get a handful
    #: of requests per second-scale interval instead of a fixed-50ms
    #: hammering that scales with compile time.
    POLL_INITIAL_INTERVAL = 0.025
    POLL_MAX_INTERVAL = 2.0

    def _backoff_sleep(
        self,
        interval: float,
        deadline: float,
        retry_after: Optional[float] = None,
    ) -> float:
        """Sleep for one backoff round (never past ``deadline``) and
        return the next interval.  A server-provided ``Retry-After``
        overrides the local schedule — the server knows its queue."""
        delay = retry_after if retry_after is not None else interval
        remaining = deadline - time.monotonic()
        if remaining > 0:
            time.sleep(min(delay, remaining))
        return min(interval * 2, self.POLL_MAX_INTERVAL)

    def wait_until_healthy(
        self,
        timeout: float = 15.0,
        accept: Sequence[str] = ("ok", "degraded"),
    ) -> Dict[str, object]:
        """Poll ``/healthz`` until the server reports an acceptable
        health state, with capped exponential backoff.

        ``accept`` lists the states to settle for: the default accepts
        a *degraded* server (it still serves traffic, just on cheaper
        presets); pass ``("ok",)`` to insist on full health.  A
        ``draining`` server (503) and connection errors both keep
        polling until ``timeout``.  Honours ``Retry-After``.
        """
        deadline = time.monotonic() + timeout
        interval = self.POLL_INITIAL_INTERVAL
        last: Optional[str] = None
        while time.monotonic() < deadline:
            try:
                reply = self.healthz()
            except ServiceClientError as exc:
                last = str(exc)
                interval = self._backoff_sleep(
                    interval, deadline, exc.retry_after
                )
                continue
            status = reply.get("status")
            if status in accept:
                return reply
            last = f"status {status!r} (accepting {list(accept)})"
            interval = self._backoff_sleep(interval, deadline)
        raise ServiceClientError(
            f"server at {self.base_url} not healthy within {timeout}s "
            f"(last: {last})"
        )

    def wait_for_job(
        self, job_id: str, timeout: float = 120.0
    ) -> Dict[str, object]:
        """Poll ``GET /jobs/<id>`` until the job reaches a terminal
        state, with capped exponential backoff (a long compile costs
        O(log) polls up front then one request per
        ``POLL_MAX_INTERVAL``, not twenty per second); a 429'd poll
        waits the server's ``Retry-After`` before retrying."""
        deadline = time.monotonic() + timeout
        interval = self.POLL_INITIAL_INTERVAL
        while time.monotonic() < deadline:
            try:
                snapshot = self.job(job_id)
            except ServiceClientError as exc:
                if exc.status != 429:
                    raise
                interval = self._backoff_sleep(
                    interval, deadline, exc.retry_after
                )
                continue
            if snapshot.get("state") in ("done", "failed", "cancelled"):
                return snapshot
            interval = self._backoff_sleep(interval, deadline)
        raise ServiceClientError(
            f"job {job_id} did not finish within {timeout}s"
        )
