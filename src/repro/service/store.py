"""Content-addressed persistent store for compiled artifacts.

Two tiers, one key space (the request fingerprint from
:meth:`repro.service.request.CompileRequest.fingerprint`):

- an **in-memory LRU tier** answering the hot repeated-request path in
  microseconds, bounded by entry count;
- an **on-disk tier** that survives process restarts, holding one
  ``<key>.json`` metadata document and one ``<key>.qasm`` artifact per
  result, sharded two hex characters deep so a million entries don't
  land in one directory.

Writes are atomic (tempfile in the target directory + ``os.replace``),
so a crashed or concurrent writer can never leave a half-written entry
a reader would see; the QASM artifact is replaced *before* the JSON
document, so a visible metadata document always points at a complete
artifact.  Disk hits are promoted into the memory tier.  All counters
(memory/disk hits, misses, evictions, puts) are served by
:meth:`ResultStore.stats` and surfaced on ``GET /stats``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import zlib
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from repro.exceptions import ReproError

#: Schema tag written into every metadata document; bumped if the
#: on-disk layout ever changes incompatibly.
STORE_VERSION = 1


@dataclass
class StoredResult:
    """One compiled artifact plus the metadata the service serves.

    Attributes:
        key: request fingerprint (sha256 hex) — the content address.
        routed_qasm: the hardware-compliant output circuit.
        metrics: Table II-style metrics dict (g_ori/g_add/d_out/...).
        properties: JSON-safe pipeline property set (pass timings,
            verification verdicts, rewrite statistics).
        request: echo of the request parameters (minus the QASM body).
        compile_seconds: wall-clock cost of the producing compilation.
        created_at: UNIX timestamp of the producing compilation.
    """

    key: str
    routed_qasm: str
    metrics: Dict[str, object] = field(default_factory=dict)
    properties: Dict[str, object] = field(default_factory=dict)
    request: Dict[str, object] = field(default_factory=dict)
    compile_seconds: float = 0.0
    created_at: float = 0.0

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe dict, QASM artifact included (the wire form)."""
        return asdict(self)


class ResultStore:
    """Two-tier (memory LRU over disk) content-addressed result store.

    Args:
        root: directory of the persistent tier; ``None`` disables disk
            entirely (memory-only store, used by throwaway servers and
            tests that don't exercise persistence).
        max_memory_entries: LRU bound of the in-memory tier.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        max_memory_entries: int = 128,
    ) -> None:
        if max_memory_entries < 1:
            raise ReproError("ResultStore needs max_memory_entries >= 1")
        self.root = root
        self.max_memory_entries = max_memory_entries
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, StoredResult]" = OrderedDict()
        self._memory_hits = 0
        self._disk_hits = 0
        self._misses = 0
        self._evictions = 0
        self._puts = 0
        if root is not None:
            os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _paths(self, key: str) -> Optional[Dict[str, str]]:
        if self.root is None:
            return None
        shard = os.path.join(self.root, key[:2])
        return {
            "shard": shard,
            "json": os.path.join(shard, f"{key}.json"),
            "qasm": os.path.join(shard, f"{key}.qasm"),
        }

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[StoredResult]:
        """Look ``key`` up: memory first, then disk (with promotion)."""
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory_hits += 1
                self._memory.move_to_end(key)
                return entry
        entry = self._read_disk(key)
        with self._lock:
            if entry is not None:
                self._disk_hits += 1
                self._remember(key, entry)
            else:
                self._misses += 1
        return entry

    def contains(self, key: str) -> bool:
        """Presence check that never touches the hit/miss counters."""
        with self._lock:
            if key in self._memory:
                return True
        paths = self._paths(key)
        return paths is not None and os.path.exists(paths["json"])

    def _read_disk(self, key: str) -> Optional[StoredResult]:
        paths = self._paths(key)
        if paths is None:
            return None
        try:
            with open(paths["json"], encoding="utf-8") as handle:
                document = json.load(handle)
            with open(paths["qasm"], encoding="utf-8") as handle:
                qasm = handle.read()
        except (OSError, json.JSONDecodeError):
            return None
        if document.get("store_version") != STORE_VERSION:
            return None
        return StoredResult(
            key=key,
            routed_qasm=qasm,
            metrics=document.get("metrics", {}),
            properties=document.get("properties", {}),
            request=document.get("request", {}),
            compile_seconds=document.get("compile_seconds", 0.0),
            created_at=document.get("created_at", 0.0),
        )

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def put(self, entry: StoredResult) -> None:
        """Insert ``entry`` under its own key into both tiers."""
        if not entry.key:
            raise ReproError("StoredResult must carry a non-empty key")
        self._write_disk(entry)
        with self._lock:
            self._puts += 1
            self._remember(entry.key, entry)

    def _remember(self, key: str, entry: StoredResult) -> None:
        """Memory-tier insert + LRU eviction; caller holds the lock."""
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self._evictions += 1

    def _write_disk(self, entry: StoredResult) -> None:
        paths = self._paths(entry.key)
        if paths is None:
            return
        os.makedirs(paths["shard"], exist_ok=True)
        document = entry.to_payload()
        document.pop("routed_qasm")  # lives in the sibling .qasm artifact
        document["store_version"] = STORE_VERSION
        # Artifact first, metadata second: a reader that can see the
        # JSON document is guaranteed a complete QASM file beside it.
        self._atomic_write(paths["shard"], paths["qasm"], entry.routed_qasm)
        self._atomic_write(
            paths["shard"], paths["json"], json.dumps(document, indent=1)
        )

    @staticmethod
    def _atomic_write(directory: str, path: str, text: str) -> None:
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Counter snapshot for ``GET /stats`` and the serve banner.

        The disk-entry count walks the persistent tier, so it runs
        *outside* the lock — a monitoring poll must never stall reads
        and writes behind O(entries) directory I/O.
        """
        with self._lock:
            snapshot = {
                "memory_hits": self._memory_hits,
                "disk_hits": self._disk_hits,
                "hits": self._memory_hits + self._disk_hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "puts": self._puts,
                "memory_entries": len(self._memory),
                "persistent": self.root is not None,
                "root": self.root,
            }
        snapshot["disk_entries"] = self._count_disk_entries()
        return snapshot

    def _count_disk_entries(self) -> int:
        if self.root is None:
            return 0
        count = 0
        try:
            with os.scandir(self.root) as shards:
                for shard in shards:
                    if not shard.is_dir():
                        continue
                    with os.scandir(shard.path) as entries:
                        count += sum(
                            1 for e in entries if e.name.endswith(".json")
                        )
        except OSError:
            return 0
        return count

    def clear_memory(self) -> None:
        """Drop the memory tier only (persistence-path test hook)."""
        with self._lock:
            self._memory.clear()


class ShardedResultStore:
    """N independent :class:`ResultStore` shards behind one interface.

    Under the process-worker fleet every dispatcher finishes compiles
    concurrently, and a single store lock serializes their ``put``/
    ``get`` traffic.  Sharding by fingerprint prefix gives each slice
    of the key space its own lock (and its own LRU), so concurrent
    dispatchers only contend when they touch the same shard.

    All shards share one ``root`` directory and the *same* on-disk
    layout as a plain :class:`ResultStore` (the key fully determines
    its path) — a store written sharded reads back unsharded and vice
    versa, so restarts and shard-count changes never strand entries.

    Args:
        root: persistent-tier directory (``None`` = memory only).
        max_memory_entries: total LRU bound, split across shards.
        num_shards: shard count (a small power of two is plenty).
    """

    def __init__(
        self,
        root: Optional[str] = None,
        max_memory_entries: int = 128,
        num_shards: int = 8,
    ) -> None:
        if num_shards < 1:
            raise ReproError("ShardedResultStore needs num_shards >= 1")
        if max_memory_entries < 1:
            raise ReproError("ShardedResultStore needs max_memory_entries >= 1")
        self.root = root
        self.num_shards = num_shards
        self.max_memory_entries = max_memory_entries
        per_shard = max(1, -(-max_memory_entries // num_shards))
        self._shards = [
            ResultStore(root=root, max_memory_entries=per_shard)
            for _ in range(num_shards)
        ]

    def _shard(self, key: str) -> ResultStore:
        """Shard owning ``key``: its leading fingerprint hex, with a
        stable fallback for non-hex keys (tests, foreign key spaces)."""
        try:
            index = int(key[:8], 16)
        except (ValueError, IndexError):
            index = zlib.crc32(key.encode("utf-8"))
        return self._shards[index % self.num_shards]

    def get(self, key: str) -> Optional[StoredResult]:
        return self._shard(key).get(key)

    def contains(self, key: str) -> bool:
        return self._shard(key).contains(key)

    def put(self, entry: StoredResult) -> None:
        self._shard(entry.key).put(entry)

    def clear_memory(self) -> None:
        for shard in self._shards:
            shard.clear_memory()

    def stats(self) -> Dict[str, object]:
        """Aggregated counters, same shape as :meth:`ResultStore.stats`
        plus ``shards``; the disk walk runs once (all shards share the
        tree), not once per shard."""
        totals = {
            "memory_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "evictions": 0,
            "puts": 0,
            "memory_entries": 0,
        }
        for shard in self._shards:
            with shard._lock:
                totals["memory_hits"] += shard._memory_hits
                totals["disk_hits"] += shard._disk_hits
                totals["misses"] += shard._misses
                totals["evictions"] += shard._evictions
                totals["puts"] += shard._puts
                totals["memory_entries"] += len(shard._memory)
        totals["hits"] = totals["memory_hits"] + totals["disk_hits"]
        totals["persistent"] = self.root is not None
        totals["root"] = self.root
        totals["shards"] = self.num_shards
        totals["disk_entries"] = self._shards[0]._count_disk_entries()
        return totals
