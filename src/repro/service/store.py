"""Content-addressed persistent store for compiled artifacts.

Two tiers, one key space (the request fingerprint from
:meth:`repro.service.request.CompileRequest.fingerprint`):

- an **in-memory LRU tier** answering the hot repeated-request path in
  microseconds, bounded by entry count;
- an **on-disk tier** that survives process restarts, holding one
  ``<key>.json`` metadata document and one ``<key>.qasm`` artifact per
  result, sharded two hex characters deep so a million entries don't
  land in one directory.

Writes are atomic *and durable*: tempfile in the target directory,
``fsync`` of the file, ``os.replace``, then ``fsync`` of the directory
— a crashed writer (or a SIGKILL mid-chaos-run) can never leave a
visible metadata document pointing at a missing or torn artifact.  The
QASM artifact is replaced *before* the JSON document, so a readable
document always has a complete artifact beside it.

Integrity: every document carries ``artifact_sha256`` (over the QASM
text) and ``document_sha256`` (over the canonical JSON of everything
else).  The read path verifies both; an entry that fails — bit-rot,
torn write, truncation — is moved to a ``quarantine/`` subtree (never
silently dropped, never served) and counted in ``stats()``.
:meth:`ResultStore.recover` runs a cheap structural scan at startup
(tmp droppings, metadata orphaned from its artifact) and
:meth:`ResultStore.scrub` verifies a whole tree checksum-by-checksum —
that's the ``repro store scrub`` CLI verb.  Disk hits are promoted
into the memory tier.  All counters (memory/disk hits, misses,
evictions, puts, quarantined) are served by :meth:`ResultStore.stats`
and surfaced on ``GET /stats``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import zlib
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import ReproError
from repro.service import faults

#: Schema tag written into every metadata document; bumped if the
#: on-disk layout ever changes incompatibly.  Version 2 added the
#: ``artifact_sha256`` / ``document_sha256`` integrity checksums.
STORE_VERSION = 2

#: Subdirectory (under the store root) receiving corrupt entries.
QUARANTINE_DIR = "quarantine"


@dataclass
class StoredResult:
    """One compiled artifact plus the metadata the service serves.

    Attributes:
        key: request fingerprint (sha256 hex) — the content address.
        routed_qasm: the hardware-compliant output circuit.
        metrics: Table II-style metrics dict (g_ori/g_add/d_out/...).
        properties: JSON-safe pipeline property set (pass timings,
            verification verdicts, rewrite statistics).
        request: echo of the request parameters (minus the QASM body).
        compile_seconds: wall-clock cost of the producing compilation.
        created_at: UNIX timestamp of the producing compilation.
    """

    key: str
    routed_qasm: str
    metrics: Dict[str, object] = field(default_factory=dict)
    properties: Dict[str, object] = field(default_factory=dict)
    request: Dict[str, object] = field(default_factory=dict)
    compile_seconds: float = 0.0
    created_at: float = 0.0

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe dict, QASM artifact included (the wire form)."""
        return asdict(self)


def artifact_checksum(text: str) -> str:
    """sha256 hex of an artifact's text (UTF-8)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def document_checksum(document: Dict[str, object]) -> str:
    """sha256 hex of a metadata document's canonical JSON form.

    Computed over everything except the ``document_sha256`` field
    itself, with sorted keys — independent of field order and of the
    pretty-printing the file was written with.
    """
    stripped = {
        name: value
        for name, value in document.items()
        if name != "document_sha256"
    }
    canonical = json.dumps(stripped, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultStore:
    """Two-tier (memory LRU over disk) content-addressed result store.

    Args:
        root: directory of the persistent tier; ``None`` disables disk
            entirely (memory-only store, used by throwaway servers and
            tests that don't exercise persistence).
        max_memory_entries: LRU bound of the in-memory tier.
        recover: run the startup recovery scan over ``root`` (cheap,
            structural only — see :meth:`recover`).  Disabled by
            sharded wrappers so N shards over one tree scan it once.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        max_memory_entries: int = 128,
        recover: bool = True,
    ) -> None:
        if max_memory_entries < 1:
            raise ReproError("ResultStore needs max_memory_entries >= 1")
        self.root = root
        self.max_memory_entries = max_memory_entries
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, StoredResult]" = OrderedDict()
        self._memory_hits = 0
        self._disk_hits = 0
        self._misses = 0
        self._evictions = 0
        self._puts = 0
        self._quarantined = 0
        self.last_recovery: Optional[Dict[str, int]] = None
        if root is not None:
            os.makedirs(root, exist_ok=True)
            if recover:
                self.last_recovery = self.recover()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _paths(self, key: str) -> Optional[Dict[str, str]]:
        if self.root is None:
            return None
        shard = os.path.join(self.root, key[:2])
        return {
            "shard": shard,
            "json": os.path.join(shard, f"{key}.json"),
            "qasm": os.path.join(shard, f"{key}.qasm"),
        }

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[StoredResult]:
        """Look ``key`` up: memory first, then disk (with promotion).

        A disk entry that fails integrity verification is quarantined
        and reported as a miss — a corrupt artifact is never served.
        """
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory_hits += 1
                self._memory.move_to_end(key)
                return entry
        entry = self._read_disk(key)
        with self._lock:
            if entry is not None:
                self._disk_hits += 1
                self._remember(key, entry)
            else:
                self._misses += 1
        return entry

    def contains(self, key: str) -> bool:
        """Presence check that never touches the hit/miss counters."""
        with self._lock:
            if key in self._memory:
                return True
        paths = self._paths(key)
        return paths is not None and os.path.exists(paths["json"])

    def _read_disk(self, key: str) -> Optional[StoredResult]:
        paths = self._paths(key)
        if paths is None:
            return None
        rule = faults.maybe_inject(faults.SITE_STORE_READ, token=key)
        if rule is not None and rule.kind == "bit_rot":
            _flip_one_byte(paths["qasm"])
        loaded = self._load_verified(key, paths, quarantine=True)
        if loaded is None:
            return None
        document, qasm = loaded
        return StoredResult(
            key=key,
            routed_qasm=qasm,
            metrics=document.get("metrics", {}),
            properties=document.get("properties", {}),
            request=document.get("request", {}),
            compile_seconds=document.get("compile_seconds", 0.0),
            created_at=document.get("created_at", 0.0),
        )

    def _load_verified(
        self, key: str, paths: Dict[str, str], quarantine: bool
    ) -> Optional[tuple]:
        """Read + fully verify one disk entry.

        Returns ``(document, qasm)`` on success, ``None`` on a plain
        miss (no entry, or a foreign ``store_version`` left for a
        future migration), and ``None`` after quarantining on any
        integrity failure.  The version check runs *before* the
        checksum check, so an old-format document is a miss, not
        corruption.
        """
        try:
            with open(paths["json"], encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            if quarantine:
                self._quarantine(key, paths, "metadata document unreadable")
            return None
        if not isinstance(document, dict):
            if quarantine:
                self._quarantine(key, paths, "metadata document not an object")
            return None
        if document.get("store_version") != STORE_VERSION:
            return None
        expected_doc = document.get("document_sha256")
        if expected_doc != document_checksum(document):
            if quarantine:
                self._quarantine(key, paths, "document checksum mismatch")
            return None
        try:
            with open(paths["qasm"], encoding="utf-8") as handle:
                qasm = handle.read()
        except (OSError, UnicodeDecodeError):
            if quarantine:
                self._quarantine(key, paths, "artifact missing or unreadable")
            return None
        if document.get("artifact_sha256") != artifact_checksum(qasm):
            if quarantine:
                self._quarantine(key, paths, "artifact checksum mismatch")
            return None
        return document, qasm

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------

    def _quarantine(self, key: str, paths: Dict[str, str], reason: str) -> None:
        """Move a corrupt entry's files under ``quarantine/`` for
        post-mortem instead of deleting or (worse) serving them."""
        if self.root is None:
            return
        qdir = os.path.join(self.root, QUARANTINE_DIR, key[:2])
        try:
            os.makedirs(qdir, exist_ok=True)
        except OSError:
            return
        for kind in ("json", "qasm"):
            source = paths.get(kind)
            if source is None:
                continue
            try:
                os.replace(
                    source, os.path.join(qdir, os.path.basename(source))
                )
            except OSError:
                pass  # half-present entries quarantine what exists
        try:
            with open(
                os.path.join(qdir, f"{key}.reason.txt"), "w", encoding="utf-8"
            ) as handle:
                handle.write(reason + "\n")
        except OSError:
            pass
        with self._lock:
            self._quarantined += 1
            self._memory.pop(key, None)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def put(self, entry: StoredResult) -> None:
        """Insert ``entry`` under its own key into both tiers."""
        if not entry.key:
            raise ReproError("StoredResult must carry a non-empty key")
        self._write_disk(entry)
        with self._lock:
            self._puts += 1
            self._remember(entry.key, entry)

    def _remember(self, key: str, entry: StoredResult) -> None:
        """Memory-tier insert + LRU eviction; caller holds the lock."""
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self._evictions += 1

    def _write_disk(self, entry: StoredResult) -> None:
        paths = self._paths(entry.key)
        if paths is None:
            return
        artifact_text = entry.routed_qasm
        rule = faults.maybe_inject(faults.SITE_STORE_WRITE, token=entry.key)
        if rule is not None:
            if rule.kind == "write_error":
                raise OSError(
                    f"injected store write failure for {entry.key[:12]}"
                )
            if rule.kind == "torn_artifact":
                # Checksums cover the *full* artifact; persisting a
                # truncated one forces the read path to catch it.
                artifact_text = artifact_text[: max(1, len(artifact_text) // 2)]
        os.makedirs(paths["shard"], exist_ok=True)
        document = entry.to_payload()
        document.pop("routed_qasm")  # lives in the sibling .qasm artifact
        document["store_version"] = STORE_VERSION
        document["artifact_sha256"] = artifact_checksum(entry.routed_qasm)
        document["document_sha256"] = document_checksum(document)
        # Artifact first, metadata second: a reader that can see the
        # JSON document is guaranteed a complete QASM file beside it.
        self._atomic_write(paths["shard"], paths["qasm"], artifact_text)
        self._atomic_write(
            paths["shard"], paths["json"], json.dumps(document, indent=1)
        )

    @staticmethod
    def _atomic_write(directory: str, path: str, text: str) -> None:
        """Atomic *and durable* replace: fsync the temp file before the
        rename and the directory after it, so a power cut or SIGKILL
        cannot surface a metadata file whose bytes never hit disk."""
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
            _fsync_directory(directory)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Recovery / scrub
    # ------------------------------------------------------------------

    def recover(self) -> Dict[str, int]:
        """Cheap structural startup scan of the persistent tier.

        Removes tempfile droppings from interrupted writes and
        quarantines metadata documents orphaned from their artifact (a
        torn pair the artifact-first write order should make
        impossible, but bit-rot and operators happen).  Structural
        only — no file is read, so startup stays O(entries) directory
        I/O; full checksum verification is :meth:`scrub`'s job.
        """
        report = {"tmp_removed": 0, "orphaned_metadata": 0}
        if self.root is None:
            return report
        for shard_path, names in self._iter_shards():
            present = set(names)
            for name in names:
                path = os.path.join(shard_path, name)
                if name.endswith(".tmp"):
                    try:
                        os.unlink(path)
                        report["tmp_removed"] += 1
                    except OSError:
                        pass
                elif name.endswith(".json"):
                    key = name[: -len(".json")]
                    if f"{key}.qasm" not in present:
                        paths = self._paths(key)
                        if paths is not None:
                            self._quarantine(
                                key, paths, "metadata without artifact"
                            )
                            report["orphaned_metadata"] += 1
        return report

    def scrub(self, repair: bool = False) -> Dict[str, object]:
        """Verify every disk entry checksum-by-checksum.

        With ``repair=True`` corrupt entries are quarantined (and tmp
        droppings removed); with ``repair=False`` the tree is left
        untouched and only reported on.  Returns a report::

            {"scanned": int, "ok": int, "corrupt": int,
             "quarantined": int, "version_mismatch": int,
             "orphaned_artifacts": int, "tmp_files": int,
             "problems": [{"key": ..., "problem": ...}, ...]}

        Powers the ``repro store scrub`` CLI verb; works on any tree a
        :class:`ResultStore` or :class:`ShardedResultStore` wrote (the
        layout is identical).
        """
        report: Dict[str, object] = {
            "root": self.root,
            "scanned": 0,
            "ok": 0,
            "corrupt": 0,
            "quarantined": 0,
            "version_mismatch": 0,
            "orphaned_artifacts": 0,
            "tmp_files": 0,
            "problems": [],
        }
        if self.root is None:
            return report
        problems: List[Dict[str, str]] = report["problems"]  # type: ignore
        for shard_path, names in self._iter_shards():
            present = set(names)
            for name in sorted(names):
                path = os.path.join(shard_path, name)
                if name.endswith(".tmp"):
                    report["tmp_files"] += 1
                    if repair:
                        try:
                            os.unlink(path)
                        except OSError:
                            pass
                    continue
                if name.endswith(".qasm"):
                    key = name[: -len(".qasm")]
                    if f"{key}.json" not in present:
                        report["orphaned_artifacts"] += 1
                        problems.append(
                            {"key": key, "problem": "artifact without metadata"}
                        )
                        if repair:
                            paths = {"qasm": path}
                            self._quarantine(
                                key, paths, "artifact without metadata"
                            )
                            report["quarantined"] += 1
                    continue
                if not name.endswith(".json"):
                    continue
                key = name[: -len(".json")]
                report["scanned"] += 1
                paths = self._paths(key)
                assert paths is not None
                problem = self._verify_entry(key, paths)
                if problem is None:
                    report["ok"] += 1
                elif problem == "version mismatch":
                    report["version_mismatch"] += 1
                    problems.append({"key": key, "problem": problem})
                else:
                    report["corrupt"] += 1
                    problems.append({"key": key, "problem": problem})
                    if repair:
                        self._quarantine(key, paths, problem)
                        report["quarantined"] += 1
        return report

    def _verify_entry(self, key: str, paths: Dict[str, str]) -> Optional[str]:
        """Full integrity verdict for one entry: ``None`` when clean,
        else a human-readable problem string.  Never mutates the tree."""
        try:
            with open(paths["json"], encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return "metadata document missing"
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return "metadata document unreadable"
        if not isinstance(document, dict):
            return "metadata document not an object"
        if document.get("store_version") != STORE_VERSION:
            return "version mismatch"
        if document.get("document_sha256") != document_checksum(document):
            return "document checksum mismatch"
        try:
            with open(paths["qasm"], encoding="utf-8") as handle:
                qasm = handle.read()
        except (OSError, UnicodeDecodeError):
            return "artifact missing or unreadable"
        if document.get("artifact_sha256") != artifact_checksum(qasm):
            return "artifact checksum mismatch"
        return None

    def _iter_shards(self):
        """Yield ``(shard_path, entry_names)`` for every shard dir,
        skipping the quarantine subtree."""
        if self.root is None:
            return
        try:
            shards = sorted(os.scandir(self.root), key=lambda e: e.name)
        except OSError:
            return
        for shard in shards:
            if not shard.is_dir() or shard.name == QUARANTINE_DIR:
                continue
            try:
                names = [entry.name for entry in os.scandir(shard.path)]
            except OSError:
                continue
            yield shard.path, names

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Counter snapshot for ``GET /stats`` and the serve banner.

        The disk-entry count walks the persistent tier, so it runs
        *outside* the lock — a monitoring poll must never stall reads
        and writes behind O(entries) directory I/O.
        """
        with self._lock:
            snapshot = {
                "memory_hits": self._memory_hits,
                "disk_hits": self._disk_hits,
                "hits": self._memory_hits + self._disk_hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "puts": self._puts,
                "quarantined": self._quarantined,
                "memory_entries": len(self._memory),
                "persistent": self.root is not None,
                "root": self.root,
            }
        snapshot["disk_entries"] = self._count_disk_entries()
        return snapshot

    def _count_disk_entries(self) -> int:
        if self.root is None:
            return 0
        count = 0
        for _shard_path, names in self._iter_shards():
            count += sum(1 for name in names if name.endswith(".json"))
        return count

    def clear_memory(self) -> None:
        """Drop the memory tier only (persistence-path test hook)."""
        with self._lock:
            self._memory.clear()


def _fsync_directory(directory: str) -> None:
    """Durably record a rename in its directory (no-op where a
    directory cannot be opened, e.g. some network filesystems)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _flip_one_byte(path: str) -> None:
    """Physically corrupt one byte of ``path`` (bit-rot injection).

    Deliberately *not* atomic — real rot isn't.  A missing or empty
    file is left alone (nothing to rot)."""
    try:
        with open(path, "r+b") as handle:
            data = handle.read()
            if not data:
                return
            position = len(data) // 2
            handle.seek(position)
            handle.write(bytes([data[position] ^ 0xFF]))
    except OSError:
        pass


class ShardedResultStore:
    """N independent :class:`ResultStore` shards behind one interface.

    Under the process-worker fleet every dispatcher finishes compiles
    concurrently, and a single store lock serializes their ``put``/
    ``get`` traffic.  Sharding by fingerprint prefix gives each slice
    of the key space its own lock (and its own LRU), so concurrent
    dispatchers only contend when they touch the same shard.

    All shards share one ``root`` directory and the *same* on-disk
    layout as a plain :class:`ResultStore` (the key fully determines
    its path) — a store written sharded reads back unsharded and vice
    versa, so restarts and shard-count changes never strand entries.

    Args:
        root: persistent-tier directory (``None`` = memory only).
        max_memory_entries: total LRU bound, split across shards.
        num_shards: shard count (a small power of two is plenty).
    """

    def __init__(
        self,
        root: Optional[str] = None,
        max_memory_entries: int = 128,
        num_shards: int = 8,
    ) -> None:
        if num_shards < 1:
            raise ReproError("ShardedResultStore needs num_shards >= 1")
        if max_memory_entries < 1:
            raise ReproError("ShardedResultStore needs max_memory_entries >= 1")
        self.root = root
        self.num_shards = num_shards
        self.max_memory_entries = max_memory_entries
        per_shard = max(1, -(-max_memory_entries // num_shards))
        # Shards share one tree: the startup recovery scan runs once
        # (first shard), not once per shard.
        self._shards = [
            ResultStore(
                root=root, max_memory_entries=per_shard, recover=(i == 0)
            )
            for i in range(num_shards)
        ]
        self.last_recovery = self._shards[0].last_recovery

    def _shard(self, key: str) -> ResultStore:
        """Shard owning ``key``: its leading fingerprint hex, with a
        stable fallback for non-hex keys (tests, foreign key spaces)."""
        try:
            index = int(key[:8], 16)
        except (ValueError, IndexError):
            index = zlib.crc32(key.encode("utf-8"))
        return self._shards[index % self.num_shards]

    def get(self, key: str) -> Optional[StoredResult]:
        return self._shard(key).get(key)

    def contains(self, key: str) -> bool:
        return self._shard(key).contains(key)

    def put(self, entry: StoredResult) -> None:
        self._shard(entry.key).put(entry)

    def clear_memory(self) -> None:
        for shard in self._shards:
            shard.clear_memory()

    def recover(self) -> Dict[str, int]:
        """One structural scan of the shared tree (see
        :meth:`ResultStore.recover`)."""
        report = self._shards[0].recover()
        self.last_recovery = report
        return report

    def scrub(self, repair: bool = False) -> Dict[str, object]:
        """One full-tree verification pass (all shards share the tree;
        see :meth:`ResultStore.scrub`)."""
        return self._shards[0].scrub(repair=repair)

    def stats(self) -> Dict[str, object]:
        """Aggregated counters, same shape as :meth:`ResultStore.stats`
        plus ``shards``; the disk walk runs once (all shards share the
        tree), not once per shard."""
        totals = {
            "memory_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "evictions": 0,
            "puts": 0,
            "quarantined": 0,
            "memory_entries": 0,
        }
        for shard in self._shards:
            with shard._lock:
                totals["memory_hits"] += shard._memory_hits
                totals["disk_hits"] += shard._disk_hits
                totals["misses"] += shard._misses
                totals["evictions"] += shard._evictions
                totals["puts"] += shard._puts
                totals["quarantined"] += shard._quarantined
                totals["memory_entries"] += len(shard._memory)
        totals["hits"] = totals["memory_hits"] + totals["disk_hits"]
        totals["persistent"] = self.root is not None
        totals["root"] = self.root
        totals["shards"] = self.num_shards
        totals["disk_entries"] = self._shards[0]._count_disk_entries()
        return totals
