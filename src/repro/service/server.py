"""Stdlib-only HTTP JSON front-end of the compilation service.

A :class:`ThreadingHTTPServer` (one thread per connection, no external
dependencies) over the coalescing scheduler and the persistent result
store.  Endpoints:

- ``POST /compile`` — one request (see
  :meth:`~repro.service.request.CompileRequest.from_payload` for the
  body schema).  Synchronous by default: the response carries the
  routed QASM, metrics, and property set.  ``"wait": false`` switches
  to fire-and-forget: a 202 with the job id, to be polled via
  ``GET /jobs/<id>``.
- ``POST /batch`` — ``{"requests": [...], "wait": bool}``; duplicates
  inside the batch coalesce onto one computation.
- ``GET /jobs/<id>`` — job state snapshot (result attached when done).
- ``DELETE /jobs/<id>`` — cancel a job: queued jobs cancel
  immediately; running jobs on the process tier have their worker
  process terminated (the lane rebuilds).
- ``GET /devices`` — the device registry, via the same
  :func:`~repro.hardware.devices.device_catalog` the CLI prints.
- ``GET /healthz`` — health: ``status`` is ``ok``, ``degraded``
  (serving, but under enough pressure that degradable presets fall
  back to ``fast``), or ``draining`` (shutting down; the only state
  answered with a 503).  Also reports uptime and queue depth.
- ``GET /stats`` — store counters, scheduler counters (including
  per-preset pass timings aggregated from result PropertySets), and
  the engine cache's :func:`~repro.engine.cache.cache_stats`; one
  :func:`~repro.telemetry.snapshot.service_snapshot` shared with the
  CLI's shutdown report.
- ``GET /metrics`` — the same numbers as Prometheus text exposition
  (format 0.0.4), rendered at scrape time from the live objects plus
  the scheduler's queue-wait/execute latency histograms.
- ``GET /trace/<job_id>`` — the span timeline of a job submitted with
  ``"trace": true`` (or ``"profile": true``, which also turns on the
  router profiling aggregates): JSON span batch covering HTTP
  handling, queue wait, worker-lane execution, and every pipeline
  pass, with cross-process spans stitched under the submit-side
  parent.  Retention is bounded (oldest traces evicted first).

Backpressure contract: when the scheduler's admission queue is full,
``POST /compile`` / ``POST /batch`` return **429** with a
``Retry-After`` header (seconds, estimated from queue depth and recent
execution times) and the same value in the JSON body — the queue never
grows unboundedly.  Compile bodies accept ``"timeout"`` (seconds,
covering queue wait + execution); a job that exceeds it fails with
``error_kind: "timeout"`` and surfaces as **504**.

Error contract: malformed bodies, unknown devices/presets/objectives,
and QASM parse errors are 400s with ``{"error": ...}``; unknown job ids
and paths are 404s; a failed compilation surfaces as a 500 (timeouts:
504) carrying the job snapshot; a cancelled job surfaces as 409.  The
server never leaks a traceback over the wire.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.hardware.devices import device_catalog
from repro.service import faults
from repro.service.request import CompileRequest
from repro.service.scheduler import (
    HEALTH_DRAINING,
    CoalescingScheduler,
    Job,
)
from repro.service.store import ResultStore
from repro.service.workers import QueueFullError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.snapshot import (
    register_service_collectors,
    service_snapshot,
)
from repro.telemetry.trace import TraceStore, Tracer, span, tracing

#: Largest request body accepted, in bytes (a Table II-scale QASM file
#: is tens of KB; this guards the server against accidental uploads).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Default bound on requests per ``POST /batch`` call.
MAX_BATCH_REQUESTS = 256


class ServiceState:
    """Everything the request handlers share."""

    def __init__(
        self,
        store: ResultStore,
        scheduler: CoalescingScheduler,
        verbose: bool = False,
        log_json: bool = False,
        max_traces: int = 128,
    ) -> None:
        self.store = store
        self.scheduler = scheduler
        self.verbose = verbose
        self.log_json = log_json
        self.started_at = time.time()
        self.requests_served = 0
        self._lock = threading.Lock()
        self.traces = TraceStore(max_traces=max_traces)
        # One registry per server instance (tests build many servers
        # per process; a process-global registry would cross streams).
        # The scheduler's latency histograms are live instruments; the
        # rest of the exposition renders from stats() snapshots at
        # scrape time, so /stats and /metrics can never disagree.
        self.registry = MetricsRegistry()
        for hist in (
            getattr(scheduler, "queue_wait_hist", None),
            getattr(scheduler, "execute_hist", None),
        ):
            if hist is not None:
                self.registry.register(hist)
        register_service_collectors(self.registry, self.snapshot)

    def count_request(self) -> None:
        with self._lock:
            self.requests_served += 1

    def uptime(self) -> float:
        return time.time() - self.started_at

    def snapshot(self) -> Dict[str, object]:
        """The one stats snapshot behind ``GET /stats``, ``/metrics``,
        and the CLI's shutdown report."""
        return service_snapshot(
            self.store,
            self.scheduler,
            uptime_seconds=self.uptime(),
            requests_served=self.requests_served,
        )


class ServiceHandler(BaseHTTPRequestHandler):
    """Route table + JSON plumbing; all state lives on ``server.state``."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    @property
    def state(self) -> ServiceState:
        return self.server.state  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        state = self.state
        if state.log_json:
            import sys

            print(
                json.dumps(
                    {
                        "ts": round(time.time(), 6),
                        "level": "info",
                        "logger": "repro.service",
                        "client": self.client_address[0],
                        "message": format % args,
                    }
                ),
                file=sys.stderr,
                flush=True,
            )
        elif state.verbose:
            import sys

            print(
                f"[{self.log_date_time_string()}] {format % args}",
                file=sys.stderr,
            )

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> object:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # Body size unknowable, so the connection cannot be resynced
            # for keep-alive — close it after the error response.
            self.close_connection = True
            raise ReproError(
                "Content-Length header is not an integer"
            ) from None
        if length <= 0:
            raise ReproError("request needs a JSON body")
        if length > MAX_BODY_BYTES:
            # Drain the in-flight body (bounded) before erroring, or a
            # keep-alive client still writing it would hit a broken
            # pipe and never see the 400.
            self._drain_body(length)
            raise ReproError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ReproError(f"request body is not valid JSON: {exc}") from exc

    def _drain_body(self, length: int) -> None:
        """Discard a declared body we refuse to process.

        Reads at most ``4 * MAX_BODY_BYTES``; anything larger gets the
        connection closed after the response instead (we won't stream
        gigabytes to /dev/null on an attacker's say-so).
        """
        cap = 4 * MAX_BODY_BYTES
        remaining = min(length, cap)
        while remaining > 0:
            chunk = self.rfile.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)
        if length > cap:
            self.close_connection = True

    def _discard_request_body(self) -> None:
        """Consume a body we will never look at (e.g. POST to an
        unknown path), keeping the keep-alive connection in sync —
        unread body bytes would be parsed as the next request line."""
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True
            return
        if length > 0:
            self._drain_body(length)

    @staticmethod
    def _coerce_priority(value: object) -> int:
        try:
            return int(value or 0)
        except (TypeError, ValueError):
            raise ReproError(
                f"field 'priority' must be an integer, got {value!r}"
            ) from None

    @staticmethod
    def _coerce_timeout(value: object) -> Optional[float]:
        if value is None:
            return None
        try:
            timeout = float(value)
        except (TypeError, ValueError):
            raise ReproError(
                f"field 'timeout' must be a number of seconds, got {value!r}"
            ) from None
        if timeout <= 0:
            raise ReproError("field 'timeout' must be > 0 seconds")
        return timeout

    def _connection_fault(self) -> bool:
        """The ``http.connection`` injection seam; True means the
        request was swallowed (connection dropped with no response,
        exactly what a mid-request network partition looks like)."""
        rule = faults.maybe_inject(faults.SITE_HTTP)
        if rule is None:
            return False
        if rule.kind == "drop":
            self.close_connection = True
            return True
        if rule.kind == "slow":
            time.sleep(rule.param)
        return False

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self.state.count_request()
        if self._connection_fault():
            return
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            health = self.state.scheduler.health()
            # Draining is the only 503: degraded still serves traffic
            # (at reduced quality), so load balancers keep routing to
            # it; a draining server is on its way out.  Health checks
            # fire constantly, so this reads the cheap queue-depth
            # accessor instead of building a full stats() snapshot.
            self._send_json(
                200 if health != HEALTH_DRAINING else 503,
                {
                    "status": health,
                    "uptime_seconds": round(self.state.uptime(), 3),
                    "queue_depth": self.state.scheduler.queue_depth(),
                },
            )
        elif path == "/devices":
            self._send_json(200, {"devices": device_catalog()})
        elif path == "/stats":
            self._send_json(200, self.state.snapshot())
        elif path == "/metrics":
            body = self.state.registry.render().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path.startswith("/trace/"):
            job_id = path[len("/trace/"):]
            trace = self.state.traces.get(job_id)
            if trace is None:
                self._send_json(
                    404,
                    {
                        "error": f"no trace for job {job_id!r}; submit "
                        "with \"trace\": true (traces are evicted "
                        "oldest-first)"
                    },
                )
            else:
                self._send_json(200, trace)
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            job = self.state.scheduler.job(job_id)
            if job is None:
                self._send_json(404, {"error": f"unknown job {job_id!r}"})
            else:
                self._send_json(200, job.snapshot())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        self.state.count_request()
        if self._connection_fault():
            return
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            if path == "/compile":
                self._handle_compile()
            elif path == "/batch":
                self._handle_batch()
            else:
                self._discard_request_body()
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except QueueFullError as exc:
            # Backpressure: the admission queue is at capacity.  The
            # client backs off for Retry-After seconds instead of the
            # server queueing unboundedly.
            retry_after = max(1, int(round(exc.retry_after)))
            self._send_json(
                429,
                {"error": str(exc), "retry_after": retry_after},
                headers={"Retry-After": str(retry_after)},
            )
        except ReproError as exc:
            # Bad request bodies, unknown devices/presets, QASM parse
            # errors: the client's fault, with the library's message.
            self._send_json(400, {"error": str(exc)})

    def do_DELETE(self) -> None:  # noqa: N802 — http.server API
        self.state.count_request()
        if self._connection_fault():
            return
        path = self.path.split("?", 1)[0].rstrip("/")
        if not path.startswith("/jobs/"):
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        job_id = path[len("/jobs/"):]
        job = self.state.scheduler.cancel(job_id)
        if job is None:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
            return
        if job.state == "running" and job.cancel_requested:
            # Process-tier kill in flight: give the dispatcher a moment
            # to observe the broken lane and resolve the job.
            job.wait(5)
        snapshot = job.snapshot()
        cancelled = job.state == "cancelled"
        status = 200 if cancelled else 409
        snapshot["cancelled"] = cancelled
        if not cancelled and "error" not in snapshot:
            snapshot["error"] = (
                f"job is {job.state} and could not be cancelled"
            )
        self._send_json(status, snapshot)

    # -- handlers ------------------------------------------------------

    def _handle_compile(self) -> None:
        payload = self._read_json_body()
        wait = True
        priority = 0
        timeout = None
        trace = False
        profile = False
        if isinstance(payload, dict):
            wait = bool(payload.pop("wait", True))
            priority = self._coerce_priority(payload.pop("priority", 0))
            timeout = self._coerce_timeout(payload.pop("timeout", None))
            # ``profile`` implies ``trace`` — the router aggregates
            # land as a span, so there must be a trace to carry them.
            profile = bool(payload.pop("profile", False))
            trace = bool(payload.pop("trace", False)) or profile
        request = CompileRequest.from_payload(payload)
        if not trace:
            job = self.state.scheduler.submit(
                request, priority=priority, timeout=timeout
            )
            if not wait:
                self._send_json(202, {"job_id": job.id, "state": job.state})
                return
            job.wait()
            status, body = self._job_response(job)
            self._send_json(status, body)
            return
        tracer = Tracer()
        with tracing(tracer):
            with tracer.start_span("http.request") as root:
                root.set("path", "/compile").set("priority", priority)
                job = self.state.scheduler.submit(
                    request,
                    priority=priority,
                    timeout=timeout,
                    tracer=tracer,
                    trace_parent=root.span_id,
                    profile=profile,
                )
                # Registered at submission: the trace endpoint shows a
                # fire-and-forget job's spans as they land.
                self.state.traces.put(job.id, tracer)
                if not wait:
                    self._send_json(
                        202,
                        {
                            "job_id": job.id,
                            "state": job.state,
                            "trace_id": tracer.trace_id,
                        },
                    )
                    return
                with span("job.wait") as wait_span:
                    job.wait()
                    wait_span.set("state", job.state)
        status, body = self._job_response(job)
        body["trace_id"] = tracer.trace_id
        self._send_json(status, body)

    def _handle_batch(self) -> None:
        payload = self._read_json_body()
        if not isinstance(payload, dict) or not isinstance(
            payload.get("requests"), list
        ):
            raise ReproError(
                "batch body must be {'requests': [...], 'wait': bool}"
            )
        raw_requests = payload["requests"]
        if not raw_requests:
            raise ReproError("batch needs at least one request")
        if len(raw_requests) > MAX_BATCH_REQUESTS:
            raise ReproError(
                f"batch of {len(raw_requests)} exceeds the "
                f"{MAX_BATCH_REQUESTS}-request limit"
            )
        wait = bool(payload.get("wait", True))
        priority = self._coerce_priority(payload.get("priority", 0))
        timeout = self._coerce_timeout(payload.get("timeout"))
        requests = [CompileRequest.from_payload(r) for r in raw_requests]
        # Per-request priority/timeout override the batch-wide default.
        priorities = [
            self._coerce_priority(r.get("priority", priority))
            if isinstance(r, dict)
            else priority
            for r in raw_requests
        ]
        timeouts = [
            self._coerce_timeout(r.get("timeout", timeout))
            if isinstance(r, dict)
            else timeout
            for r in raw_requests
        ]
        jobs = self.state.scheduler.submit_batch(
            requests,
            priority=priority,
            priorities=priorities,
            timeout=timeout,
            timeouts=timeouts,
        )
        if not wait:
            self._send_json(
                202,
                {"jobs": [{"job_id": j.id, "state": j.state} for j in jobs]},
            )
            return
        for job in jobs:
            job.wait()
        results = []
        for job in jobs:
            _, body = self._job_response(job)
            results.append(body)
        failed = sum(1 for job in jobs if job.state == "failed")
        self._send_json(
            200 if failed == 0 else 500,
            {"results": results, "failed": failed},
        )

    def _job_response(self, job: Job) -> Tuple[int, Dict[str, object]]:
        """(status, body) for a *finished* job."""
        snapshot = job.snapshot()
        if job.state == "cancelled":
            return 409, snapshot
        if job.state == "failed":
            return 504 if job.error_kind == "timeout" else 500, snapshot
        return 200, snapshot

def build_server(
    host: str = "127.0.0.1",
    port: int = 0,
    store: Optional[ResultStore] = None,
    scheduler: Optional[CoalescingScheduler] = None,
    workers: int = 2,
    verbose: bool = False,
    execution: str = "thread",
    mp_start_method: Optional[str] = None,
    max_queue_depth: Optional[int] = None,
    default_timeout: Optional[float] = None,
    degrade: bool = False,
    trial_jobs: Optional[int] = None,
    log_json: bool = False,
) -> ThreadingHTTPServer:
    """Construct (but do not start) a service instance.

    ``port=0`` binds a free ephemeral port — read the actual one from
    ``server.server_address``.  The caller owns the lifecycle:
    ``serve_forever()`` to run, ``shutdown_service`` to stop cleanly.

    ``execution="process"`` routes compiles to the process-worker
    fleet (the production tier; ``repro serve`` defaults to it);
    ``"thread"`` keeps them in-process.  ``max_queue_depth`` and
    ``default_timeout`` configure backpressure and per-request
    deadlines; both pass straight to :class:`CoalescingScheduler` and
    are ignored when a pre-built ``scheduler`` is supplied.
    """
    store = store if store is not None else ResultStore()
    scheduler = (
        scheduler
        if scheduler is not None
        else CoalescingScheduler(
            store=store,
            workers=workers,
            execution=execution,
            mp_start_method=mp_start_method,
            max_queue_depth=max_queue_depth,
            default_timeout=default_timeout,
            degrade=degrade,
            trial_jobs=trial_jobs,
        )
    )
    server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.daemon_threads = True
    server.state = ServiceState(  # type: ignore[attr-defined]
        store=store, scheduler=scheduler, verbose=verbose, log_json=log_json
    )
    return server


def start_in_thread(server: ThreadingHTTPServer) -> threading.Thread:
    """Run ``server`` on a daemon thread (tests, benchmarks, examples)."""
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="repro-service",
        daemon=True,
    )
    thread.start()
    return thread


def shutdown_service(server: ThreadingHTTPServer) -> None:
    """Stop the listener and drain the scheduler's worker pool."""
    server.shutdown()
    server.server_close()
    server.state.scheduler.shutdown()  # type: ignore[attr-defined]


def serve_url(server: ThreadingHTTPServer) -> str:
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"
