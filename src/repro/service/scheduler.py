"""Coalescing scheduler: dedup identical work onto one computation.

The serving tier's traffic is dominated by *repeats*: benchmark suites
re-submit the same circuits, VQA loops re-compile near-identical
ansätze, and concurrent clients race each other with the same request.
The scheduler exploits that shape twice:

- a **store check at submission** answers anything already compiled
  (this process or a previous one) without queueing at all;
- an **in-flight table** keyed by request fingerprint merges concurrent
  identical submissions onto one :class:`Job` — N racing clients cost
  exactly one pipeline execution, and all N wake when it finishes.  A
  coalescing submission *escalates* the shared job to the highest
  priority any of its waiters asked for, so a high-priority client is
  never stuck behind the low priority of whoever asked first.

Everything else is a bounded set of dispatcher threads draining a
priority queue (higher priority first, FIFO within a priority).  Each
dispatcher executes :func:`repro.service.request.execute_request` —
the same pass-pipeline/trial-engine path as ``compile_circuit`` and
the CLI; the scheduler adds no second compile implementation — on one
of two tiers:

- ``execution="process"`` (the production fleet): each dispatcher owns
  a :class:`~repro.service.workers.WorkerLane`, a single-process
  executor, so N workers are N truly parallel compiles instead of N
  GIL-serialized threads.  Lanes give the scheduler hard per-request
  timeouts, cancellation of *running* jobs, and crash isolation (a
  dead worker process fails its own job only; the lane rebuilds).
- ``execution="thread"`` (in-process tier): compiles run on the
  dispatcher thread itself — zero process overhead, used by tests
  that inject unpicklable ``compile_fn`` stand-ins and by embedders
  that want a lightweight in-process server.

Production backpressure: ``max_queue_depth`` bounds admission — a full
queue rejects with :class:`~repro.service.workers.QueueFullError`
(mapped to HTTP 429 + ``Retry-After`` by the server) instead of
queueing unboundedly.

Self-healing (the robustness tier):

- **retry-on-crash** — a job whose worker process dies is requeued up
  to ``crash_retries`` times (transient OOM kills and chaos-injected
  crashes recover without the client noticing);
- **poison-job quarantine** — a fingerprint that has killed
  ``poison_threshold`` workers is quarantined: its job fails with
  ``error_kind: "poison"`` and later submissions of the same
  fingerprint fail fast instead of grinding lanes down one by one;
- **lane supervision** — each dispatcher backs off exponentially after
  consecutive crashes, with a circuit breaker that takes the lane out
  of rotation for ``breaker_cooldown`` seconds once
  ``breaker_threshold`` consecutive crashes accumulate (half-open: the
  next job is the probe);
- **graceful degradation** (opt-in ``degrade=True``; ``repro serve``
  enables it) — under sustained queue pressure or repeated lane loss,
  presets in :data:`DEGRADE_PRESET_MAP` fall back to the cheaper
  ``fast`` pipeline, stamped ``degraded: true`` in the job snapshot
  and result properties; degraded artifacts are *never* written to
  the content-addressed store (a later non-degraded request must not
  be served a degraded artifact).  :meth:`CoalescingScheduler.health`
  reports ``ok | degraded | draining`` for ``GET /healthz``.
"""

from __future__ import annotations

import heapq
import itertools
import sys
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.exceptions import ReproError
from repro.service import faults
from repro.service.request import CompileRequest, execute_request
from repro.service.store import ResultStore, StoredResult
from repro.service.workers import (
    JobTimeout,
    LaneStartupError,
    QueueFullError,
    WorkerCrashed,
    WorkerLane,
    apply_worker_fault,
    resolve_mp_context,
)
from repro.telemetry.metrics import Histogram
from repro.telemetry.profile import profiled_routing
from repro.telemetry.trace import Tracer, span, tracing

#: Job lifecycle states (strings so snapshots are JSON-native).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Execution tiers (see module docstring).
EXECUTION_MODES = ("thread", "process")

#: Completed/failed jobs retained for ``GET /jobs/<id>`` lookups.
MAX_FINISHED_JOBS = 512

#: ``Retry-After`` estimates are clamped into this range (seconds) —
#: wide enough to be honest about a deep queue, narrow enough that a
#: client is never told to go away for minutes on a hiccup.
MIN_RETRY_AFTER = 0.05
MAX_RETRY_AFTER = 60.0

#: Per-job drain estimate used before any job has completed (the
#: cold-start case: the EWMA has no samples yet).
COLD_START_EXEC_ESTIMATE = 0.5

#: Health states served by ``GET /healthz``.
HEALTH_OK = "ok"
HEALTH_DEGRADED = "degraded"
HEALTH_DRAINING = "draining"

#: Presets that may fall back to a cheaper preset under degradation.
#: ``directed_device`` is deliberately absent: degrading it would drop
#: direction legalization and break the compliance contract.
DEGRADE_PRESET_MAP: Dict[str, str] = {
    "paper_default": "fast",
    "best_effort": "fast",
}

# Heap entries are ``[neg_priority, seq, job, alive]`` — lists, not
# tuples, so a priority escalation can mark the old entry dead in
# place (index ``_ENTRY_ALIVE``) and push a replacement instead of
# rebuilding the heap.  ``seq`` is unique, so comparison never reaches
# the job object.
_ENTRY_JOB = 2
_ENTRY_ALIVE = 3


@dataclass
class Job:
    """One scheduled (or store-answered) compilation.

    A job is shared by every submission that coalesced onto it; its
    ``event`` fires once, when the single underlying computation (or
    store lookup) resolves.
    """

    id: str
    key: str
    request: CompileRequest
    #: The request's circuit, parsed once at submission and reused by
    #: the worker (fingerprinting already had to parse it).
    circuit: Optional[object] = None
    priority: int = 0
    state: str = QUEUED
    cached: bool = False
    coalesced: int = 0
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: Machine-readable failure class: ``"timeout"``, ``"crash"``,
    #: ``"poison"`` (fingerprint quarantined after repeated crashes),
    #: ``"shutdown"``, or ``"error"`` (plain compile exception).
    error_kind: Optional[str] = None
    result: Optional[StoredResult] = None
    #: Crash-retry attempt this job is on (0 = first dispatch).
    attempt: int = 0
    #: True when the job executed on a degraded (cheaper) preset.
    degraded: bool = False
    #: Effective timeout (seconds) and its monotonic deadline; the
    #: deadline covers queue wait *and* execution, and coalescing
    #: keeps the most generous waiter's deadline.
    timeout_seconds: Optional[float] = None
    deadline: Optional[float] = None
    cancel_requested: bool = False
    #: Tracing (optional): the tracer collecting this job's spans, the
    #: span id the execution spans parent under (the submitter's HTTP
    #: span), and whether router profiling was requested.  Carried by
    #: the job so the dispatcher thread — and, via serialized context,
    #: the worker process — can contribute spans to the right trace.
    tracer: Optional[Tracer] = field(default=None, repr=False)
    trace_parent: Optional[str] = None
    profile: bool = False
    event: threading.Event = field(default_factory=threading.Event)
    #: Scheduler internals: the live heap entry while queued, and the
    #: lane executing the job while running (process tier only).
    entry: Optional[list] = field(default=None, repr=False)
    lane: Optional[WorkerLane] = field(default=None, repr=False)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job resolves; True unless the wait timed out."""
        return self.event.wait(timeout)

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED, CANCELLED)

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe view served by ``GET /jobs/<id>``."""
        snap: Dict[str, object] = {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "priority": self.priority,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "request": self.request.summary(),
        }
        if self.timeout_seconds is not None:
            snap["timeout_seconds"] = self.timeout_seconds
        if self.attempt:
            snap["attempts"] = self.attempt + 1
        if self.degraded:
            snap["degraded"] = True
        if self.error is not None:
            snap["error"] = self.error
        if self.error_kind is not None:
            snap["error_kind"] = self.error_kind
        if self.state == DONE and self.result is not None:
            snap["result"] = self.result.to_payload()
        return snap


class LaneSupervisor:
    """Restart policy for one dispatcher's lane.

    Tracks consecutive crash-class failures.  Each failure earns an
    exponentially growing backoff (``backoff_base * 2**(n-1)``, capped
    at ``backoff_max``); once ``breaker_threshold`` consecutive
    failures accumulate the breaker *opens* — the lane sits out
    ``breaker_cooldown`` seconds, then half-opens (the next job is the
    probe; success closes the breaker, another crash re-opens it).
    The dispatcher thread owns its supervisor, so no locking is needed
    for the failure bookkeeping; snapshots read racily for stats.
    """

    def __init__(
        self,
        backoff_base: float = 0.05,
        backoff_max: float = 5.0,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
    ) -> None:
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.consecutive_failures = 0
        self.breaker_trips = 0
        self.breaker_open = False

    def record_failure(self) -> float:
        """Count one lane loss; returns how long the lane sits out."""
        self.consecutive_failures += 1
        if (
            self.breaker_threshold > 0
            and self.consecutive_failures >= self.breaker_threshold
        ):
            self.breaker_trips += 1
            self.breaker_open = True
            return self.breaker_cooldown
        return min(
            self.backoff_base * (2 ** (self.consecutive_failures - 1)),
            self.backoff_max,
        )

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.breaker_open = False

    def snapshot(self) -> Dict[str, object]:
        return {
            "consecutive_failures": self.consecutive_failures,
            "breaker": "open" if self.breaker_open else "closed",
            "breaker_trips": self.breaker_trips,
        }


class CoalescingScheduler:
    """Bounded dispatcher fleet with store-backed request coalescing.

    Args:
        store: the result store consulted before queueing and written
            after every execution.
        workers: dispatcher count (request-level concurrency; on the
            process tier, also the worker-process count).
        compile_fn: the request executor, called as
            ``compile_fn(request, circuit=..., key=...)`` with the
            circuit and fingerprint already resolved at submission (so
            the worker never re-parses or re-hashes); overridable so
            tests can inject slow or counting stand-ins.  Production
            uses :func:`repro.service.request.execute_request`.  On the
            process tier it must be picklable (module-level).
        execution: ``"process"`` runs each compile in the dispatcher's
            private worker process; ``"thread"`` runs it on the
            dispatcher thread (see module docstring).
        mp_start_method: multiprocessing start method for the process
            tier (``fork``/``spawn``/``forkserver``); defaults to the
            ``REPRO_MP_START_METHOD`` env var, then the platform
            default.
        max_queue_depth: bound on *queued* (not running) jobs; a full
            queue rejects submissions with :class:`QueueFullError`.
            ``None`` means unbounded (embedded/test use).
        default_timeout: per-job deadline in seconds applied when a
            submission doesn't carry its own; ``None`` disables.
        join_timeout: total seconds ``shutdown(wait=True)`` spends
            joining dispatchers before declaring them hung and failing
            their jobs.
        crash_retries: times a crash-failed job is requeued before
            giving up (transient crashes recover invisibly).
        poison_threshold: worker crashes a single fingerprint may cause
            before it is quarantined as a poison job (fails fast with
            ``error_kind: "poison"`` on this and later submissions).
        restart_backoff_base / restart_backoff_max: exponential lane
            sit-out after consecutive crashes (seconds).
        breaker_threshold / breaker_cooldown: consecutive crashes that
            open a lane's circuit breaker, and how long it stays open.
        degrade: enable graceful degradation (``repro serve`` turns
            this on; library default is off so embedded schedulers
            never silently change what they compile).
        degrade_queue_threshold: queued jobs at/above which degraded
            mode engages; defaults to 3/4 of ``max_queue_depth`` when
            bounded, else disabled.
        degrade_crash_threshold: consecutive fleet-wide crashes
            at/above which degraded mode engages.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 2,
        compile_fn: Callable[..., StoredResult] = execute_request,
        execution: str = "thread",
        mp_start_method: Optional[str] = None,
        max_queue_depth: Optional[int] = None,
        default_timeout: Optional[float] = None,
        join_timeout: float = 30.0,
        crash_retries: int = 2,
        poison_threshold: int = 3,
        restart_backoff_base: float = 0.05,
        restart_backoff_max: float = 5.0,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
        degrade: bool = False,
        degrade_queue_threshold: Optional[int] = None,
        degrade_crash_threshold: int = 3,
        trial_jobs: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ReproError("CoalescingScheduler needs workers >= 1")
        if execution not in EXECUTION_MODES:
            raise ReproError(
                f"unknown execution mode {execution!r}; "
                f"available: {list(EXECUTION_MODES)}"
            )
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ReproError("max_queue_depth must be >= 1 (or None)")
        if trial_jobs is not None and trial_jobs < 1:
            raise ValueError(
                f"trial_jobs must be a positive integer, got {trial_jobs!r}"
            )
        if crash_retries < 0:
            raise ReproError("crash_retries must be >= 0")
        if poison_threshold < 1:
            raise ReproError("poison_threshold must be >= 1")
        self.store = store if store is not None else ResultStore()
        self.compile_fn = compile_fn
        #: Opt-in multi-core trial sweeps: cores granted to each
        #: compile's best-of-K fan-out (the hybrid/ensemble engine
        #: path).  ``None`` keeps the classic serial in-worker sweep.
        #: When set, ``compile_fn`` must accept a ``trial_jobs`` kwarg
        #: (the production ``execute_request`` does).
        self.trial_jobs = trial_jobs
        self.workers = workers
        self.execution = execution
        self.max_queue_depth = max_queue_depth
        self.default_timeout = default_timeout
        self.join_timeout = join_timeout
        self.crash_retries = crash_retries
        self.poison_threshold = poison_threshold
        self.degrade_enabled = degrade
        if degrade_queue_threshold is None and max_queue_depth is not None:
            degrade_queue_threshold = max(1, (3 * max_queue_depth) // 4)
        self.degrade_queue_threshold = degrade_queue_threshold
        self.degrade_crash_threshold = degrade_crash_threshold
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._heap: List[list] = []
        self._queued = 0  # live (non-stale) heap entries
        self._seq = itertools.count()
        self._job_ids = itertools.count(1)
        self._inflight: Dict[str, Job] = {}
        self._jobs: Dict[str, Job] = {}
        self._finished_order: List[str] = []
        self._shutdown = False
        self._unjoined: List[str] = []
        # Counters
        self._submitted = 0
        self._store_answered = 0
        self._coalesced = 0
        self._executions = 0
        self._completed = 0
        self._failed = 0
        self._cancelled = 0
        self._timeouts = 0
        self._worker_crashes = 0
        self._rejected = 0
        self._store_put_failures = 0
        self._retries = 0
        self._degraded_executions = 0
        self._poisoned_failures = 0
        self._consecutive_crashes = 0
        #: key -> crash count so far (cleared on success/quarantine).
        self._crash_counts: Dict[str, int] = {}
        #: key -> crash count at quarantine time (the poison list).
        self._poisoned: Dict[str, int] = {}
        #: Interrupts supervisor backoff/breaker waits at shutdown.
        self._stop_event = threading.Event()
        #: EWMA of execution wall time, feeding Retry-After estimates.
        self._avg_exec_seconds: Optional[float] = None
        #: Per-preset pass-timing aggregation harvested from each
        #: executed result's PropertySet: preset -> pass -> [calls, sec].
        self._pass_timings: Dict[str, Dict[str, List[float]]] = {}
        #: Latency histograms, observed unconditionally (a bisect plus
        #: two adds under a small lock) so the series exist whether or
        #: not anything scrapes them; the server registers them on its
        #: metrics registry for ``GET /metrics``.
        self.queue_wait_hist = Histogram(
            "repro_queue_wait_seconds",
            "Seconds jobs spent queued before first dispatch",
        )
        self.execute_hist = Histogram(
            "repro_execute_seconds",
            "Wall seconds per successful compile execution",
        )
        # Resolve any env-configured fault plan now, while the process
        # is still effectively single-threaded — not lazily from a
        # dispatcher racing the first worker fork.
        faults.active_plan()
        if execution == "process":
            context = resolve_mp_context(mp_start_method)
            self._lanes: List[Optional[WorkerLane]] = [
                WorkerLane(compile_fn, context, trial_jobs=trial_jobs)
                for _ in range(workers)
            ]
        else:
            self._lanes = [None] * workers
        self._supervisors = [
            LaneSupervisor(
                backoff_base=restart_backoff_base,
                backoff_max=restart_backoff_max,
                breaker_threshold=breaker_threshold,
                breaker_cooldown=breaker_cooldown,
            )
            for _ in range(workers)
        ]
        self._threads = [
            threading.Thread(
                target=self._worker,
                args=(lane, supervisor),
                name=f"repro-compile-{i}",
                daemon=True,
            )
            for i, (lane, supervisor) in enumerate(
                zip(self._lanes, self._supervisors)
            )
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        request: CompileRequest,
        priority: int = 0,
        timeout: Optional[float] = None,
        tracer: Optional[Tracer] = None,
        trace_parent: Optional[str] = None,
        profile: bool = False,
    ) -> Job:
        """Submit one request; returns its (possibly shared) job.

        Resolution order: persistent store (job completes immediately,
        ``cached=True``), then the in-flight table (returns the already
        scheduled job, escalated to ``max`` of the waiters' priorities
        and the most generous of their deadlines), then a fresh queue
        entry — admitted only while the queue is below
        ``max_queue_depth`` (:class:`QueueFullError` otherwise, which
        the HTTP layer maps to 429 + ``Retry-After``).  QASM parse
        errors surface here, synchronously — a request that cannot be
        fingerprinted is rejected before it can occupy a worker.

        ``tracer`` / ``trace_parent`` / ``profile`` attach trace
        collection to a *fresh* job: the dispatcher (and, across the
        process boundary, the worker) records queue-wait, execution,
        pipeline-pass, and — with ``profile`` — router-step spans into
        the tracer, parented under ``trace_parent``.  A submission that
        coalesces onto an existing job keeps that job's tracer (first
        submitter wins); store-answered jobs execute nothing, so their
        trace is just the submitter's own spans.
        """
        if self._shutdown:
            raise ReproError("scheduler is shut down")
        # Parse once: the fingerprint needs the gate list anyway, and
        # the worker reuses the parsed circuit via the job.
        circuit = request.parsed_circuit()
        key = request.fingerprint(circuit)
        effective_timeout = timeout if timeout is not None else self.default_timeout
        with self._lock:
            self._submitted += 1
            poisoned = self._poisoned.get(key)
            if poisoned is not None:
                # Poison-job quarantine: this fingerprint has already
                # killed enough workers; fail fast instead of feeding
                # it another lane.
                self._poisoned_failures += 1
                job = self._new_job(key, request, priority)
                job.error = (
                    f"fingerprint {key[:12]} is quarantined as a poison "
                    f"job ({poisoned} worker crashes); refusing to "
                    "schedule it again"
                )
                job.error_kind = "poison"
                self._finish(job, FAILED)
                return job
            inflight = self._inflight.get(key)
            if inflight is not None:
                self._coalesce_onto(inflight, priority, effective_timeout)
                return inflight
        entry = self.store.get(key)
        with self._lock:
            if entry is not None:
                self._store_answered += 1
                job = self._new_job(key, request, priority)
                job.cached = True
                job.result = entry
                self._finish(job, DONE)
                return job
            # Re-check the in-flight table: a racing submit may have
            # queued this key while we were probing the store.
            inflight = self._inflight.get(key)
            if inflight is not None:
                self._coalesce_onto(inflight, priority, effective_timeout)
                return inflight
            # Re-check shutdown under the lock: after the workers have
            # drained and exited, an enqueued job would hang its
            # waiters forever.
            if self._shutdown:
                raise ReproError("scheduler is shut down")
            if (
                self.max_queue_depth is not None
                and self._queued >= self.max_queue_depth
            ):
                self._rejected += 1
                retry_after = self._retry_after_estimate()
                raise QueueFullError(
                    f"compile queue is full ({self._queued} queued, "
                    f"limit {self.max_queue_depth}); retry in "
                    f"~{retry_after:.0f}s",
                    retry_after=retry_after,
                )
            job = self._new_job(key, request, priority)
            job.circuit = circuit
            job.tracer = tracer
            job.trace_parent = trace_parent
            job.profile = profile
            job.timeout_seconds = effective_timeout
            if effective_timeout is not None:
                job.deadline = time.monotonic() + effective_timeout
            self._inflight[key] = job
            job.entry = [-priority, next(self._seq), job, True]
            heapq.heappush(self._heap, job.entry)
            self._queued += 1
            self._not_empty.notify()
            return job

    def submit_batch(
        self,
        requests: Sequence[CompileRequest],
        priority: int = 0,
        priorities: Optional[Sequence[int]] = None,
        timeout: Optional[float] = None,
        timeouts: Optional[Sequence[Optional[float]]] = None,
    ) -> List[Job]:
        """Submit many requests; duplicates inside the batch coalesce
        exactly like concurrent clients do (same in-flight table).
        ``priorities`` / ``timeouts`` override the batch-wide
        ``priority`` / ``timeout`` per item.
        """
        if priorities is None:
            priorities = [priority] * len(requests)
        if len(priorities) != len(requests):
            raise ReproError(
                "submit_batch needs one priority per request "
                f"(got {len(priorities)} for {len(requests)})"
            )
        if timeouts is None:
            timeouts = [timeout] * len(requests)
        if len(timeouts) != len(requests):
            raise ReproError(
                "submit_batch needs one timeout per request "
                f"(got {len(timeouts)} for {len(requests)})"
            )
        return [
            self.submit(request, item_priority, timeout=item_timeout)
            for request, item_priority, item_timeout in zip(
                requests, priorities, timeouts
            )
        ]

    def _coalesce_onto(
        self, job: Job, priority: int, timeout: Optional[float]
    ) -> None:
        """Merge one more waiter onto ``job``; lock held.

        Escalates the queued entry to the max of its waiters'
        priorities — without this, a priority-10 request coalesced onto
        a queued priority-0 job would wait at priority 0 (the
        inversion this re-push fixes) — and keeps the most generous
        waiter's deadline (``timeout=None`` waiters remove it).
        """
        job.coalesced += 1
        self._coalesced += 1
        if priority > job.priority:
            job.priority = priority
            if job.state == QUEUED and job.entry is not None:
                job.entry[_ENTRY_ALIVE] = False
                job.entry = [-priority, next(self._seq), job, True]
                heapq.heappush(self._heap, job.entry)
        if timeout is None:
            job.deadline = None
            job.timeout_seconds = None
        elif job.deadline is not None:
            deadline = time.monotonic() + timeout
            if deadline > job.deadline:
                job.deadline = deadline
                job.timeout_seconds = timeout

    def _new_job(self, key: str, request: CompileRequest, priority: int) -> Job:
        job = Job(
            id=f"job-{next(self._job_ids):06d}",
            key=key,
            request=request,
            priority=priority,
        )
        self._jobs[job.id] = job
        return job

    def _retry_after_estimate(self) -> float:
        """Seconds a 429'd client should wait; lock held.

        Queue drain time at the recent average execution cost, spread
        across the worker fleet, clamped into
        [:data:`MIN_RETRY_AFTER`, :data:`MAX_RETRY_AFTER`].  Before
        any job has completed (cold start, no EWMA samples) each
        queued job is assumed to cost
        :data:`COLD_START_EXEC_ESTIMATE` seconds.
        """
        per_job = (
            self._avg_exec_seconds
            if self._avg_exec_seconds is not None
            else COLD_START_EXEC_ESTIMATE
        )
        estimate = (self._queued / max(self.workers, 1)) * per_job
        return min(max(estimate, MIN_RETRY_AFTER), MAX_RETRY_AFTER)

    # ------------------------------------------------------------------
    # Lookup / waiting / cancellation
    # ------------------------------------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, job: Job, timeout: Optional[float] = None) -> Job:
        """Block until ``job`` resolves; raises on timeout."""
        if not job.wait(timeout):
            raise ReproError(
                f"timed out after {timeout}s waiting for {job.id}"
            )
        return job

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a job (``DELETE /jobs/<id>``); returns it, or ``None``
        for an unknown id.

        A *queued* job cancels immediately (every coalesced waiter
        wakes with state ``cancelled`` — the job is shared, so is its
        cancellation).  A *running* job on the process tier has its
        worker process terminated; the dispatcher then resolves it as
        cancelled and the lane rebuilds.  A running thread-tier job
        cannot be interrupted, and a finished job is past cancelling —
        both return unchanged (callers inspect ``job.state``).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.finished:
                return job
            if job.state == QUEUED:
                if job.entry is not None:
                    job.entry[_ENTRY_ALIVE] = False
                    job.entry = None
                    self._queued -= 1
                self._inflight.pop(job.key, None)
                job.error = "cancelled while queued"
                job.error_kind = "cancelled"
                self._finish(job, CANCELLED)
                return job
            # RUNNING
            lane = job.lane
            if lane is None:
                return job  # thread tier: uninterruptible, still running
            job.cancel_requested = True
        # Kill outside the lock: the dispatcher blocked on this lane's
        # future observes the broken pool and resolves the job.
        lane.kill()
        return job

    # ------------------------------------------------------------------
    # Dispatcher loop
    # ------------------------------------------------------------------

    def _next_job(self, lane: Optional[WorkerLane]) -> Optional[Job]:
        """Block for the next runnable job; ``None`` means shut down.

        Skips stale heap entries (escalated duplicates, cancelled or
        shutdown-failed jobs) and fails queue-waiters whose deadline
        already passed before a worker could get to them.
        """
        with self._not_empty:
            while True:
                while not self._heap and not self._shutdown:
                    self._not_empty.wait()
                if not self._heap and self._shutdown:
                    return None
                entry = heapq.heappop(self._heap)
                job = entry[_ENTRY_JOB]
                if not entry[_ENTRY_ALIVE] or job.state != QUEUED:
                    continue
                self._queued -= 1
                job.entry = None
                if (
                    job.deadline is not None
                    and time.monotonic() >= job.deadline
                ):
                    self._inflight.pop(job.key, None)
                    self._timeouts += 1
                    job.error = (
                        f"timed out after {job.timeout_seconds}s waiting "
                        "in the queue"
                    )
                    job.error_kind = "timeout"
                    self._finish(job, FAILED)
                    continue
                job.state = RUNNING
                job.started_at = time.time()
                job.lane = lane
                return job

    def _worker(
        self, lane: Optional[WorkerLane], supervisor: LaneSupervisor
    ) -> None:
        while True:
            job = self._next_job(lane)
            if job is None:
                return
            if job.attempt == 0:
                # First dispatch only: a retry's "wait" would include
                # the failed execution and lie about queue pressure.
                wait = max(
                    (job.started_at or job.created_at) - job.created_at, 0.0
                )
                self.queue_wait_hist.observe(wait)
                if job.tracer is not None:
                    job.tracer.add_raw(
                        "queue.wait",
                        job.trace_parent,
                        start=job.created_at,
                        wall_seconds=wait,
                        attrs={"priority": job.priority},
                    )
            remaining = None
            if job.deadline is not None:
                remaining = max(job.deadline - time.monotonic(), 0.001)
            # The fault token folds in the attempt number so injected
            # crashes are transient: the retry's token differs.
            token = f"{job.key}#a{job.attempt}"
            exec_request, degraded = self._dispatch_request(job)
            started = time.perf_counter()
            try:
                rule = faults.maybe_inject(faults.SITE_DISPATCH, token=token)
                if rule is not None:
                    if rule.kind == "slow":
                        time.sleep(rule.param)
                    elif rule.kind == "crash":
                        raise WorkerCrashed(
                            f"injected dispatch crash (token {token!r})"
                        )
                if lane is not None:
                    result = self._run_on_lane(
                        lane, job, exec_request, remaining, token
                    )
                else:
                    apply_worker_fault(token, hard=False)
                    result = self._run_inline(job, exec_request)
            except BaseException as exc:  # noqa: BLE001 — job carries it
                delay = self._handle_dispatch_failure(job, exc, supervisor)
                if delay > 0.0:
                    # Lane supervision: sit out the backoff (or the
                    # breaker cooldown), interruptibly so shutdown
                    # never waits on a cooling lane.
                    self._stop_event.wait(delay)
                continue
            supervisor.record_success()
            if degraded:
                job.degraded = True
                result.properties = dict(result.properties)
                result.properties["degraded"] = True
                result.properties["degraded_from"] = job.request.pipeline
            if not degraded:
                # Degraded artifacts never reach the content-addressed
                # store: the key promises the *requested* pipeline, and
                # a healthy-mode repeat must recompile, not get served
                # the cheap fallback forever.
                try:
                    self.store.put(result)
                except OSError:
                    # The compile succeeded; a full or read-only store
                    # must degrade to serving uncached results, not
                    # fail jobs.
                    with self._lock:
                        self._store_put_failures += 1
            duration = time.perf_counter() - started
            self.execute_hist.observe(duration)
            with self._lock:
                self._executions += 1
                if degraded:
                    self._degraded_executions += 1
                self._consecutive_crashes = 0
                self._crash_counts.pop(job.key, None)
                if self._avg_exec_seconds is None:
                    self._avg_exec_seconds = duration
                else:
                    self._avg_exec_seconds = (
                        0.8 * self._avg_exec_seconds + 0.2 * duration
                    )
                self._harvest_timings(exec_request.pipeline, result)
                job.lane = None
                job.result = result
                self._inflight.pop(job.key, None)
                self._finish(job, DONE)

    def _run_on_lane(
        self,
        lane: WorkerLane,
        job: Job,
        exec_request: CompileRequest,
        remaining: Optional[float],
        token: str,
    ) -> StoredResult:
        """Process-tier execution, with trace context shipped across
        the boundary when the job is traced: the lane call carries
        ``(trace_id, parent span id, profile?)`` in and the worker's
        serialized span batch comes back alongside the result."""
        tracer = job.tracer
        if tracer is None:
            return lane.run(
                exec_request,
                job.circuit,
                job.key,
                timeout=remaining,
                fault_token=token,
            )
        with tracer.start_span(
            "job.execute", parent_id=job.trace_parent
        ) as exec_span:
            exec_span.set("tier", "process").set("attempt", job.attempt)
            result, worker_spans = lane.run(
                exec_request,
                job.circuit,
                job.key,
                timeout=remaining,
                fault_token=token,
                trace_ctx=(tracer.trace_id, exec_span.span_id, job.profile),
            )
        tracer.add_spans(worker_spans)
        return result

    def _run_inline(
        self, job: Job, exec_request: CompileRequest
    ) -> StoredResult:
        """Thread-tier execution on the dispatcher thread itself,
        activating the job's tracer (and profiler) around the call."""
        kwargs: Dict[str, object] = {}
        if self.trial_jobs is not None:
            # Injected test compile_fns may not accept the kwarg, so it
            # is only passed when the multi-core sweep is configured.
            kwargs["trial_jobs"] = self.trial_jobs
        tracer = job.tracer
        if tracer is None:
            return self.compile_fn(
                exec_request, circuit=job.circuit, key=job.key, **kwargs
            )
        with tracing(tracer, parent_id=job.trace_parent):
            with span("job.execute") as exec_span:
                exec_span.set("tier", "thread").set("attempt", job.attempt)
                if not job.profile:
                    return self.compile_fn(
                        exec_request, circuit=job.circuit, key=job.key,
                        **kwargs,
                    )
                with profiled_routing() as profiler:
                    result = self.compile_fn(
                        exec_request, circuit=job.circuit, key=job.key,
                        **kwargs,
                    )
                if not profiler.empty:
                    tracer.add_raw(
                        "router.profile",
                        exec_span.span_id,
                        start=time.time(),
                        wall_seconds=profiler.kernel_seconds,
                        attrs=profiler.to_dict(),
                    )
                return result

    def _dispatch_request(self, job: Job) -> tuple:
        """(request to execute, degraded?) — the degradation decision,
        made at dispatch time so pressure is measured when the job
        actually runs, not when it was queued."""
        if self.degrade_enabled:
            fallback = DEGRADE_PRESET_MAP.get(job.request.pipeline)
            if fallback is not None:
                with self._lock:
                    pressured = not self._shutdown and self._pressure_locked()
                if pressured:
                    return replace(job.request, pipeline=fallback), True
        return job.request, False

    def _handle_dispatch_failure(
        self, job: Job, exc: BaseException, supervisor: LaneSupervisor
    ) -> float:
        """Classify a dispatch exception; returns the lane's sit-out
        seconds (0 for failures that aren't lane losses).

        Crash-class failures walk the self-healing ladder: requeue up
        to ``crash_retries`` times; a fingerprint reaching
        ``poison_threshold`` total crashes is quarantined and fails
        with ``error_kind: "poison"``.
        """
        delay = 0.0
        with self._lock:
            job.lane = None
            if job.cancel_requested:
                self._inflight.pop(job.key, None)
                job.error = "cancelled while running"
                job.error_kind = "cancelled"
                self._finish(job, CANCELLED)
            elif isinstance(exc, JobTimeout):
                self._inflight.pop(job.key, None)
                self._timeouts += 1
                job.error = f"{type(exc).__name__}: {exc}"
                job.error_kind = "timeout"
                self._finish(job, FAILED)
            elif isinstance(exc, WorkerCrashed):
                self._worker_crashes += 1
                self._consecutive_crashes += 1
                delay = supervisor.record_failure()
                if isinstance(exc, LaneStartupError):
                    # The lane's worker never came up — a sick lane,
                    # not a killer job.  Retry like a crash, but never
                    # charge the fingerprint's poison count: the job's
                    # code was never reached.
                    crashes = self._crash_counts.get(job.key, 0)
                else:
                    crashes = self._crash_counts.get(job.key, 0) + 1
                    self._crash_counts[job.key] = crashes
                if crashes >= self.poison_threshold:
                    self._poisoned[job.key] = crashes
                    self._crash_counts.pop(job.key, None)
                    self._inflight.pop(job.key, None)
                    job.error = (
                        f"poison job: fingerprint {job.key[:12]} crashed "
                        f"{crashes} worker process(es); quarantined"
                    )
                    job.error_kind = "poison"
                    self._finish(job, FAILED)
                elif job.attempt < self.crash_retries and not self._shutdown:
                    self._retries += 1
                    self._requeue_locked(job)
                else:
                    self._inflight.pop(job.key, None)
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.error_kind = "crash"
                    self._finish(job, FAILED)
            else:
                self._inflight.pop(job.key, None)
                job.error = f"{type(exc).__name__}: {exc}"
                job.error_kind = "error"
                self._finish(job, FAILED)
        return delay

    def _requeue_locked(self, job: Job) -> None:
        """Put a crash-retried job back on the queue; lock held.  The
        job stays in the in-flight table (waiters keep their handle),
        keeps its priority and deadline, and bumps its attempt."""
        job.attempt += 1
        job.state = QUEUED
        job.started_at = None
        job.entry = [-job.priority, next(self._seq), job, True]
        heapq.heappush(self._heap, job.entry)
        self._queued += 1
        self._not_empty.notify()

    def _finish(self, job: Job, state: str) -> None:
        """Terminal transition + finished-job retention; lock held.

        Idempotent: a job can race shutdown's pending-sweep against a
        slow worker's own completion — first transition wins.
        """
        if job.finished:
            return
        job.state = state
        job.finished_at = time.time()
        if state == DONE:
            self._completed += 1
        elif state == CANCELLED:
            self._cancelled += 1
        else:
            self._failed += 1
        self._finished_order.append(job.id)
        while len(self._finished_order) > MAX_FINISHED_JOBS:
            self._jobs.pop(self._finished_order.pop(0), None)
        job.event.set()

    def _harvest_timings(self, preset: str, result: StoredResult) -> None:
        per_pass = self._pass_timings.setdefault(preset, {})
        for name, seconds in result.properties.get("pass_timings", []):
            bucket = per_pass.setdefault(name, [0, 0.0])
            bucket[0] += 1
            bucket[1] += float(seconds)

    # ------------------------------------------------------------------
    # Introspection / shutdown
    # ------------------------------------------------------------------

    def _pressure_locked(self) -> bool:
        """Is the fleet under enough pressure to degrade?  Lock held.

        True on repeated lane loss (``degrade_crash_threshold``
        consecutive fleet-wide crashes, or any open circuit breaker)
        or sustained queue pressure (``degrade_queue_threshold``
        queued jobs)."""
        if (
            self.degrade_crash_threshold > 0
            and self._consecutive_crashes >= self.degrade_crash_threshold
        ):
            return True
        if any(s.breaker_open for s in self._supervisors):
            return True
        if (
            self.degrade_queue_threshold is not None
            and self._queued >= self.degrade_queue_threshold
        ):
            return True
        return False

    def _health_locked(self) -> str:
        if self._shutdown:
            return HEALTH_DRAINING
        if self.degrade_enabled and self._pressure_locked():
            return HEALTH_DEGRADED
        return HEALTH_OK

    def health(self) -> str:
        """``ok`` | ``degraded`` | ``draining`` (for ``GET /healthz``)."""
        with self._lock:
            return self._health_locked()

    def queue_depth(self) -> int:
        """Live queued-job count — the cheap accessor ``/healthz``
        reads instead of assembling the full :meth:`stats` payload
        (which walks the pass-timing aggregation on every call)."""
        with self._lock:
            return self._queued

    def lane_pids(self) -> List[int]:
        """Live worker-process PIDs across all lanes (empty on the
        thread tier); after ``shutdown`` this must drain to empty —
        the no-orphaned-workers assertion chaos tests lean on."""
        pids: List[int] = []
        for lane in self._lanes:
            if lane is not None:
                pids.extend(lane.pids())
        return pids

    def stats(self) -> Dict[str, object]:
        """Counter snapshot for ``GET /stats``."""
        with self._lock:
            return {
                "workers": self.workers,
                "execution": self.execution,
                "health": self._health_locked(),
                "submitted": self._submitted,
                "store_answered": self._store_answered,
                "coalesced": self._coalesced,
                "executions": self._executions,
                "completed": self._completed,
                "failed": self._failed,
                "cancelled": self._cancelled,
                "timeouts": self._timeouts,
                "worker_crashes": self._worker_crashes,
                "retries": self._retries,
                "poisoned": len(self._poisoned),
                "poisoned_failures": self._poisoned_failures,
                "degraded_executions": self._degraded_executions,
                "consecutive_crashes": self._consecutive_crashes,
                "breaker_trips": sum(
                    s.breaker_trips for s in self._supervisors
                ),
                "lanes": [s.snapshot() for s in self._supervisors],
                "rejected": self._rejected,
                "store_put_failures": self._store_put_failures,
                "queue_depth": self._queued,
                "max_queue_depth": self.max_queue_depth,
                "inflight": len(self._inflight),
                "lane_restarts": sum(
                    lane.restarts for lane in self._lanes if lane is not None
                ),
                "avg_exec_seconds": (
                    round(self._avg_exec_seconds, 6)
                    if self._avg_exec_seconds is not None
                    else None
                ),
                "shutdown_unjoined": list(self._unjoined),
                "pass_timings": {
                    preset: {
                        name: {"calls": calls, "seconds": round(sec, 6)}
                        for name, (calls, sec) in sorted(per_pass.items())
                    }
                    for preset, per_pass in sorted(self._pass_timings.items())
                },
            }

    def shutdown(self, wait: bool = True) -> List[str]:
        """Stop accepting work; drain the queue, then stop the workers.

        With ``wait=True`` the dispatchers get ``join_timeout`` seconds
        *total* to drain and exit.  Any dispatcher still alive after
        that is hung (a wedged worker process, a stuck compile) — its
        lane's process is terminated to unblock it, and every job that
        still hasn't resolved is failed with a shutdown error so no
        waiter blocks forever on a scheduler that no longer exists.
        Returns the names of dispatchers that could not be joined
        (also reported in ``stats()["shutdown_unjoined"]``).
        """
        with self._not_empty:
            self._shutdown = True
            self._not_empty.notify_all()
        # Wake any lane sitting out a supervision backoff or breaker
        # cooldown — shutdown must never wait on a cooling lane.
        self._stop_event.set()
        unjoined: List[str] = []
        if wait:
            deadline = time.monotonic() + self.join_timeout
            for thread in self._threads:
                thread.join(timeout=max(0.0, deadline - time.monotonic()))
                if thread.is_alive():
                    unjoined.append(thread.name)
            if unjoined and self.execution == "process":
                # A dispatcher blocked on a hung worker process: kill
                # the process so the future breaks, then re-join.
                for thread, lane in zip(self._threads, self._lanes):
                    if thread.is_alive() and lane is not None:
                        lane.kill()
                unjoined = []
                for thread in self._threads:
                    if thread.is_alive():
                        thread.join(timeout=2.0)
                    if thread.is_alive():
                        unjoined.append(thread.name)
            with self._lock:
                pending = [
                    job for job in self._jobs.values() if not job.finished
                ]
                for job in pending:
                    if job.entry is not None:
                        job.entry[_ENTRY_ALIVE] = False
                        job.entry = None
                    job.error = (
                        "scheduler shut down before the job could run"
                        if job.state == QUEUED
                        else "scheduler shut down while the job was "
                        "running (worker unresponsive)"
                    )
                    job.error_kind = "shutdown"
                    self._finish(job, FAILED)
                self._heap.clear()
                self._queued = 0
                self._inflight.clear()
                self._unjoined = list(unjoined)
            if unjoined:
                print(
                    f"warning: {len(unjoined)} scheduler dispatcher(s) "
                    f"failed to join within {self.join_timeout}s: "
                    f"{', '.join(unjoined)}",
                    file=sys.stderr,
                )
        for lane in self._lanes:
            if lane is not None:
                lane.shutdown()
        return unjoined
