"""Coalescing scheduler: dedup identical work onto one computation.

The serving tier's traffic is dominated by *repeats*: benchmark suites
re-submit the same circuits, VQA loops re-compile near-identical
ansätze, and concurrent clients race each other with the same request.
The scheduler exploits that shape twice:

- a **store check at submission** answers anything already compiled
  (this process or a previous one) without queueing at all;
- an **in-flight table** keyed by request fingerprint merges concurrent
  identical submissions onto one :class:`Job` — N racing clients cost
  exactly one pipeline execution, and all N wake when it finishes.

Everything else runs on a bounded pool of worker threads draining a
priority queue (higher priority first, FIFO within a priority).  Each
worker executes :func:`repro.service.request.execute_request`, which
drives the same pass-pipeline/trial-engine path as ``compile_circuit``
and the CLI — the scheduler adds no second compile implementation.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.exceptions import ReproError
from repro.service.request import CompileRequest, execute_request
from repro.service.store import ResultStore, StoredResult

#: Job lifecycle states (strings so snapshots are JSON-native).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Completed/failed jobs retained for ``GET /jobs/<id>`` lookups.
MAX_FINISHED_JOBS = 512


@dataclass
class Job:
    """One scheduled (or store-answered) compilation.

    A job is shared by every submission that coalesced onto it; its
    ``event`` fires once, when the single underlying computation (or
    store lookup) resolves.
    """

    id: str
    key: str
    request: CompileRequest
    #: The request's circuit, parsed once at submission and reused by
    #: the worker (fingerprinting already had to parse it).
    circuit: Optional[object] = None
    priority: int = 0
    state: str = QUEUED
    cached: bool = False
    coalesced: int = 0
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    result: Optional[StoredResult] = None
    event: threading.Event = field(default_factory=threading.Event)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job resolves; True unless the wait timed out."""
        return self.event.wait(timeout)

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED)

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe view served by ``GET /jobs/<id>``."""
        snap: Dict[str, object] = {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "priority": self.priority,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "request": self.request.summary(),
        }
        if self.error is not None:
            snap["error"] = self.error
        if self.state == DONE and self.result is not None:
            snap["result"] = self.result.to_payload()
        return snap


class CoalescingScheduler:
    """Bounded worker pool with store-backed request coalescing.

    Args:
        store: the result store consulted before queueing and written
            after every execution.
        workers: worker-thread count (request-level concurrency).
        compile_fn: the request executor, called as
            ``compile_fn(request, circuit=..., key=...)`` with the
            circuit and fingerprint already resolved at submission (so
            the worker never re-parses or re-hashes); overridable so
            tests can inject slow or counting stand-ins.  Production
            uses :func:`repro.service.request.execute_request`.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 2,
        compile_fn: Callable[..., StoredResult] = execute_request,
    ) -> None:
        if workers < 1:
            raise ReproError("CoalescingScheduler needs workers >= 1")
        self.store = store if store is not None else ResultStore()
        self.compile_fn = compile_fn
        self.workers = workers
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._job_ids = itertools.count(1)
        self._inflight: Dict[str, Job] = {}
        self._jobs: Dict[str, Job] = {}
        self._finished_order: List[str] = []
        self._shutdown = False
        # Counters
        self._submitted = 0
        self._store_answered = 0
        self._coalesced = 0
        self._executions = 0
        self._completed = 0
        self._failed = 0
        self._store_put_failures = 0
        #: Per-preset pass-timing aggregation harvested from each
        #: executed result's PropertySet: preset -> pass -> [calls, sec].
        self._pass_timings: Dict[str, Dict[str, List[float]]] = {}
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-compile-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, request: CompileRequest, priority: int = 0) -> Job:
        """Submit one request; returns its (possibly shared) job.

        Resolution order: persistent store (job completes immediately,
        ``cached=True``), then the in-flight table (returns the already
        scheduled job), then a fresh queue entry.  QASM parse errors
        surface here, synchronously — a request that cannot be
        fingerprinted is rejected before it can occupy a worker.
        """
        if self._shutdown:
            raise ReproError("scheduler is shut down")
        # Parse once: the fingerprint needs the gate list anyway, and
        # the worker reuses the parsed circuit via the job.
        circuit = request.parsed_circuit()
        key = request.fingerprint(circuit)
        with self._lock:
            self._submitted += 1
            inflight = self._inflight.get(key)
            if inflight is not None:
                inflight.coalesced += 1
                self._coalesced += 1
                return inflight
        entry = self.store.get(key)
        with self._lock:
            if entry is not None:
                self._store_answered += 1
                job = self._new_job(key, request, priority)
                job.cached = True
                job.result = entry
                self._finish(job, DONE)
                return job
            # Re-check the in-flight table: a racing submit may have
            # queued this key while we were probing the store.
            inflight = self._inflight.get(key)
            if inflight is not None:
                inflight.coalesced += 1
                self._coalesced += 1
                return inflight
            # Re-check shutdown under the lock: after the workers have
            # drained and exited, an enqueued job would hang its
            # waiters forever.
            if self._shutdown:
                raise ReproError("scheduler is shut down")
            job = self._new_job(key, request, priority)
            job.circuit = circuit
            self._inflight[key] = job
            heapq.heappush(self._heap, (-priority, next(self._seq), job))
            self._not_empty.notify()
            return job

    def submit_batch(
        self,
        requests: Sequence[CompileRequest],
        priority: int = 0,
        priorities: Optional[Sequence[int]] = None,
    ) -> List[Job]:
        """Submit many requests; duplicates inside the batch coalesce
        exactly like concurrent clients do (same in-flight table).
        ``priorities`` overrides the batch-wide ``priority`` per item.
        """
        if priorities is None:
            priorities = [priority] * len(requests)
        if len(priorities) != len(requests):
            raise ReproError(
                "submit_batch needs one priority per request "
                f"(got {len(priorities)} for {len(requests)})"
            )
        return [
            self.submit(request, item_priority)
            for request, item_priority in zip(requests, priorities)
        ]

    def _new_job(self, key: str, request: CompileRequest, priority: int) -> Job:
        job = Job(
            id=f"job-{next(self._job_ids):06d}",
            key=key,
            request=request,
            priority=priority,
        )
        self._jobs[job.id] = job
        return job

    # ------------------------------------------------------------------
    # Lookup / waiting
    # ------------------------------------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, job: Job, timeout: Optional[float] = None) -> Job:
        """Block until ``job`` resolves; raises on timeout."""
        if not job.wait(timeout):
            raise ReproError(
                f"timed out after {timeout}s waiting for {job.id}"
            )
        return job

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._not_empty:
                while not self._heap and not self._shutdown:
                    self._not_empty.wait()
                if self._shutdown and not self._heap:
                    return
                _, _, job = heapq.heappop(self._heap)
                job.state = RUNNING
                job.started_at = time.time()
            try:
                result = self.compile_fn(
                    job.request, circuit=job.circuit, key=job.key
                )
            except BaseException as exc:  # noqa: BLE001 — job carries it
                with self._lock:
                    job.error = f"{type(exc).__name__}: {exc}"
                    self._inflight.pop(job.key, None)
                    self._finish(job, FAILED)
                continue
            try:
                self.store.put(result)
            except OSError:
                # The compile succeeded; a full or read-only store must
                # degrade to serving uncached results, not fail jobs.
                with self._lock:
                    self._store_put_failures += 1
            with self._lock:
                self._executions += 1
                self._harvest_timings(job.request.pipeline, result)
                job.result = result
                self._inflight.pop(job.key, None)
                self._finish(job, DONE)

    def _finish(self, job: Job, state: str) -> None:
        """Terminal transition + finished-job retention; lock held."""
        job.state = state
        job.finished_at = time.time()
        if state == DONE:
            self._completed += 1
        else:
            self._failed += 1
        self._finished_order.append(job.id)
        while len(self._finished_order) > MAX_FINISHED_JOBS:
            self._jobs.pop(self._finished_order.pop(0), None)
        job.event.set()

    def _harvest_timings(self, preset: str, result: StoredResult) -> None:
        per_pass = self._pass_timings.setdefault(preset, {})
        for name, seconds in result.properties.get("pass_timings", []):
            bucket = per_pass.setdefault(name, [0, 0.0])
            bucket[0] += 1
            bucket[1] += float(seconds)

    # ------------------------------------------------------------------
    # Introspection / shutdown
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Counter snapshot for ``GET /stats``."""
        with self._lock:
            return {
                "workers": self.workers,
                "submitted": self._submitted,
                "store_answered": self._store_answered,
                "coalesced": self._coalesced,
                "executions": self._executions,
                "completed": self._completed,
                "failed": self._failed,
                "store_put_failures": self._store_put_failures,
                "queue_depth": len(self._heap),
                "inflight": len(self._inflight),
                "pass_timings": {
                    preset: {
                        name: {"calls": calls, "seconds": round(sec, 6)}
                        for name, (calls, sec) in sorted(per_pass.items())
                    }
                    for preset, per_pass in sorted(self._pass_timings.items())
                },
            }

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; drain the queue, then stop the workers."""
        with self._not_empty:
            self._shutdown = True
            self._not_empty.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=30)
