"""Deterministic fault injection for the serving stack.

Every failure mode the service claims to survive — worker crashes,
bit-rot in the store, torn writes, dropped connections, slow dispatch —
should be a *reproducible test*, not an incident report.  This module
provides the one switchboard the whole stack consults: a seeded
:class:`FaultPlan` whose decisions are a pure function of
``(seed, site, token)``, so the identical seed replays the identical
fault schedule byte-for-byte regardless of thread or process
interleaving.

Injection sites (the four seams of the service):

- ``worker.execute`` — inside the worker, before the compile runs
  (kinds: ``crash`` — hard process death on the process tier, a
  :class:`~repro.service.workers.WorkerCrashed` on the thread tier;
  ``hang`` — sleep ``param`` seconds, default effectively forever;
  ``slow`` — sleep ``param`` seconds then proceed).
- ``store.write`` — in :meth:`ResultStore.put`'s disk path (kinds:
  ``write_error`` — raise :class:`OSError`; ``torn_artifact`` — persist
  a truncated artifact under a checksum of the full one, so the read
  path must catch it).
- ``store.read`` — before a disk read (kind: ``bit_rot`` — physically
  flip one byte of the on-disk artifact; the store's checksum
  verification must quarantine it).
- ``scheduler.dispatch`` — as a dispatcher picks up a job (kinds:
  ``slow`` — sleep ``param``; ``crash`` — synthesize a
  :class:`WorkerCrashed`, exercising retry/poison logic without a real
  process death).
- ``http.connection`` — as a request reaches a handler (kinds:
  ``drop`` — close the connection without a response; ``slow`` — sleep
  ``param`` before handling).

Activation: :func:`activate` installs a plan process-wide;
:data:`FAULT_PLAN_ENV` (``REPRO_FAULT_PLAN``, a JSON spec) activates
one lazily on first use — which is how worker *processes* (fork or
spawn) and ``repro serve`` subprocesses inherit the chaos schedule.
Disabled is the default and costs one ``None`` check per seam.

Determinism: keyed sites (worker/store/dispatch) decide by hashing
``(seed, site, kind, token)`` — order- and timing-independent.  The
token is the request fingerprint (plus the attempt number at the
worker seam, so an injected crash can be *transient*: attempt 1
crashes, the retry's different token passes).  Unkeyed sites (HTTP
connections have no fingerprint yet) draw from a per-site
``random.Random(seed ^ hash(site))`` sequence: the n-th connection
fault is reproducible even though which client thread absorbs it is
not.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError

#: Environment variable holding a JSON fault-plan spec (see
#: :meth:`FaultPlan.from_spec`).  Read lazily on the first seam hit, so
#: worker subprocesses and ``repro serve`` inherit the plan for free.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Injection sites and the fault kinds each one understands.
SITE_WORKER = "worker.execute"
SITE_STORE_WRITE = "store.write"
SITE_STORE_READ = "store.read"
SITE_DISPATCH = "scheduler.dispatch"
SITE_HTTP = "http.connection"

SITE_KINDS: Dict[str, Tuple[str, ...]] = {
    SITE_WORKER: ("crash", "hang", "slow"),
    SITE_STORE_WRITE: ("write_error", "torn_artifact"),
    SITE_STORE_READ: ("bit_rot",),
    SITE_DISPATCH: ("slow", "crash"),
    SITE_HTTP: ("drop", "slow"),
}


class FaultPlanError(ReproError):
    """A malformed fault-plan spec (unknown site/kind, bad probability)."""


@dataclass(frozen=True)
class FaultRule:
    """One (site, kind) injection with its firing probability.

    Attributes:
        site: injection seam (a :data:`SITE_KINDS` key).
        kind: fault flavour the seam understands.
        probability: chance in [0, 1] each decision fires.
        param: kind-specific knob (seconds for ``slow``/``hang``).
        match: substring the token must contain (`""` matches all) —
            lets a plan target one fingerprint as a poison pill.
        max_fires: lifetime cap on firings (``None`` = unbounded);
            bounds chaos so a soak always converges.
    """

    site: str
    kind: str
    probability: float = 1.0
    param: float = 0.0
    match: str = ""
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in SITE_KINDS:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; "
                f"available: {sorted(SITE_KINDS)}"
            )
        if self.kind not in SITE_KINDS[self.site]:
            raise FaultPlanError(
                f"site {self.site!r} has no fault kind {self.kind!r}; "
                f"available: {list(SITE_KINDS[self.site])}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in [0, 1], got {self.probability!r}"
            )


def _hash_unit(seed: int, site: str, kind: str, token: str) -> float:
    """A deterministic draw in [0, 1) from the decision's identity."""
    digest = hashlib.sha256(
        f"{seed}|{site}|{kind}|{token}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Thread-safe; decisions for keyed sites are pure functions of
    ``(seed, site, kind, token)``, so two plans with the same seed and
    rules produce the identical schedule in any call order.
    """

    def __init__(self, seed: int = 0, rules: Sequence[FaultRule] = ()) -> None:
        self.seed = int(seed)
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self._lock = threading.Lock()
        self._fired: Dict[Tuple[str, str], int] = {}
        self._rule_fires: Dict[int, int] = {}
        self._site_rngs: Dict[str, random.Random] = {}

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def decide(self, site: str, token: Optional[str] = None) -> Optional[FaultRule]:
        """The fault to inject at ``site`` for ``token``, if any.

        First matching rule wins.  Keyed decisions hash; unkeyed ones
        draw from the site's seeded RNG sequence.  Fire counters (and
        ``max_fires`` caps) update under the plan's lock.
        """
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.match and (token is None or rule.match not in token):
                continue
            if token is not None:
                draw = _hash_unit(self.seed, site, rule.kind, token)
            else:
                with self._lock:
                    rng = self._site_rngs.get(site)
                    if rng is None:
                        rng = random.Random(
                            f"{self.seed}|{site}".encode("utf-8")
                        )
                        self._site_rngs[site] = rng
                    draw = rng.random()
            if draw >= rule.probability:
                continue
            with self._lock:
                if (
                    rule.max_fires is not None
                    and self._rule_fires.get(index, 0) >= rule.max_fires
                ):
                    continue
                self._rule_fires[index] = self._rule_fires.get(index, 0) + 1
                key = (site, rule.kind)
                self._fired[key] = self._fired.get(key, 0) + 1
            return rule
        return None

    # ------------------------------------------------------------------
    # Introspection / wire format
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Fire counters (surfaced on ``GET /stats`` as ``faults``)."""
        with self._lock:
            fired = {
                f"{site}:{kind}": count
                for (site, kind), count in sorted(self._fired.items())
            }
            total = sum(self._fired.values())
        return {
            "seed": self.seed,
            "rules": len(self.rules),
            "fired_total": total,
            "fired": fired,
        }

    def to_spec(self) -> Dict[str, object]:
        """JSON-safe spec, round-trippable through :meth:`from_spec`."""
        rules: List[Dict[str, object]] = []
        for rule in self.rules:
            item: Dict[str, object] = {
                "site": rule.site,
                "kind": rule.kind,
                "probability": rule.probability,
            }
            if rule.param:
                item["param"] = rule.param
            if rule.match:
                item["match"] = rule.match
            if rule.max_fires is not None:
                item["max_fires"] = rule.max_fires
            rules.append(item)
        return {"seed": self.seed, "rules": rules}

    @classmethod
    def from_spec(cls, spec: object) -> "FaultPlan":
        """Build a plan from a decoded JSON spec::

            {"seed": 7, "rules": [
                {"site": "worker.execute", "kind": "crash",
                 "probability": 0.1},
                {"site": "store.read", "kind": "bit_rot",
                 "probability": 0.2, "max_fires": 5}]}
        """
        if not isinstance(spec, dict):
            raise FaultPlanError(
                f"fault plan spec must be a JSON object, got "
                f"{type(spec).__name__}"
            )
        raw_rules = spec.get("rules", [])
        if not isinstance(raw_rules, list):
            raise FaultPlanError("fault plan 'rules' must be a list")
        rules = []
        for raw in raw_rules:
            if not isinstance(raw, dict):
                raise FaultPlanError("each fault rule must be a JSON object")
            unknown = sorted(
                set(raw)
                - {"site", "kind", "probability", "param", "match", "max_fires"}
            )
            if unknown:
                raise FaultPlanError(f"unknown fault rule field(s) {unknown}")
            try:
                rules.append(
                    FaultRule(
                        site=str(raw.get("site", "")),
                        kind=str(raw.get("kind", "")),
                        probability=float(raw.get("probability", 1.0)),
                        param=float(raw.get("param", 0.0)),
                        match=str(raw.get("match", "")),
                        max_fires=(
                            int(raw["max_fires"])
                            if raw.get("max_fires") is not None
                            else None
                        ),
                    )
                )
            except (TypeError, ValueError) as exc:
                raise FaultPlanError(f"bad fault rule {raw!r}: {exc}") from None
        try:
            seed = int(spec.get("seed", 0))
        except (TypeError, ValueError):
            raise FaultPlanError(
                f"fault plan 'seed' must be an integer, got {spec.get('seed')!r}"
            ) from None
        return cls(seed=seed, rules=rules)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan described by :data:`FAULT_PLAN_ENV`, or ``None``."""
        raw = os.environ.get(FAULT_PLAN_ENV)
        if not raw:
            return None
        try:
            spec = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(
                f"${FAULT_PLAN_ENV} is not valid JSON: {exc}"
            ) from None
        return cls.from_spec(spec)


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------

#: Sentinel: the environment has not been consulted yet.  After the
#: first seam hit this becomes either a plan or ``None``, so the
#: disabled fast path is a single identity check.
_UNRESOLVED = object()
_active: object = _UNRESOLVED
_activation_lock = threading.Lock()


def _reinit_locks_after_fork() -> None:
    """Replace this module's locks in a freshly forked child.

    A ``fork``-context worker process copies only the forking thread;
    if any *other* parent thread held :data:`_activation_lock` (lazy
    env resolution) or the active plan's counter lock (a firing
    ``decide``) at fork time, the child inherits those locks
    permanently acquired and its first ``maybe_inject`` deadlocks —
    observed as a worker process that is alive but never executes its
    job.  The child is single-threaded at this point, so fresh locks
    are safe; the data they guard is consistent because CPython forks
    with the GIL held.
    """
    global _activation_lock
    _activation_lock = threading.Lock()
    active = _active
    if isinstance(active, FaultPlan):
        active._lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # not on every platform
    os.register_at_fork(after_in_child=_reinit_locks_after_fork)


def activate(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-wide (tests, ``repro serve``)."""
    global _active
    with _activation_lock:
        _active = plan
    return plan


def deactivate() -> None:
    """Remove any active plan *and* stop consulting the environment."""
    global _active
    with _activation_lock:
        _active = None


def reset() -> None:
    """Forget activation state so the env var is consulted again
    (test hygiene between cases that monkeypatch the environment)."""
    global _active
    with _activation_lock:
        _active = _UNRESOLVED


def active_plan() -> Optional[FaultPlan]:
    """The live plan: explicit activation first, then the env var."""
    global _active
    plan = _active
    if plan is _UNRESOLVED:
        with _activation_lock:
            if _active is _UNRESOLVED:
                _active = FaultPlan.from_env()
            plan = _active
    return plan  # type: ignore[return-value]


def maybe_inject(site: str, token: Optional[str] = None) -> Optional[FaultRule]:
    """The seam call: ``None`` (and near-zero cost) unless a plan is
    active and decides to fire at this site for this token."""
    plan = _active
    if plan is None:
        return None
    if plan is _UNRESOLVED:
        plan = active_plan()
        if plan is None:
            return None
    return plan.decide(site, token)  # type: ignore[union-attr]
