"""The Bridge transform (paper §III-A "Other Methods").

A CNOT between qubits at distance 2 can execute *without* moving any
qubit using the 4-CNOT bridge identity through the middle qubit ``m``:

    CX(a, b) = CX(m, b) . CX(a, m) . CX(m, b) . CX(a, m)

Compared with SWAP-then-CNOT (3 + 1 = 4 CNOTs, mapping changed), the
bridge also costs 4 CNOTs but leaves the mapping intact — a win when
the two qubits never interact again but a loss when they do.  The
paper's SABRE uses SWAPs only; this extension adds a post-routing
peephole that bridges isolated distance-2 CNOTs, plus the raw identity
for direct use.
"""

from __future__ import annotations

from typing import List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.exceptions import HardwareError
from repro.hardware.coupling import CouplingGraph


def bridge_gates(a: int, middle: int, b: int) -> List[Gate]:
    """The 4-CNOT bridge implementing CX(a, b) through ``middle``."""
    return [
        Gate("cx", (a, middle)),
        Gate("cx", (middle, b)),
        Gate("cx", (a, middle)),
        Gate("cx", (middle, b)),
    ]


def _common_neighbor(
    coupling: CouplingGraph, a: int, b: int
) -> Optional[int]:
    shared = set(coupling.neighbors(a)) & set(coupling.neighbors(b))
    return min(shared) if shared else None


def route_with_bridges(
    circuit: QuantumCircuit, coupling: CouplingGraph
) -> QuantumCircuit:
    """Greedy per-gate router that prefers bridges over SWAPs.

    Walks the circuit keeping the identity mapping; distance-1 CNOTs
    pass through, distance-2 CNOTs become bridges, anything farther
    raises (this router is an illustrative baseline for the bridge
    trade-off, not a general mapper — compose with SABRE for that).

    Raises:
        HardwareError: when a CNOT spans distance > 2.
    """
    out = QuantumCircuit(
        circuit.num_qubits, f"{circuit.name}_bridged", circuit.num_clbits
    )
    for gate in circuit:
        if not gate.is_two_qubit:
            out.append(gate)
            continue
        a, b = gate.qubits
        if coupling.are_coupled(a, b):
            out.append(gate)
            continue
        if gate.name != "cx":
            raise HardwareError(
                f"bridge transform only applies to CNOTs, got {gate}"
            )
        middle = _common_neighbor(coupling, a, b)
        if middle is None:
            raise HardwareError(
                f"qubits {a} and {b} are farther than distance 2; "
                "use a full router"
            )
        out.extend(bridge_gates(a, middle, b))
    return out
