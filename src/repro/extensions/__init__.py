"""Extensions beyond the paper's core evaluation (its §VI future work).

- :mod:`repro.extensions.directed` — CNOT-direction legalisation for
  asymmetric devices (IBM QX2/QX4/QX5-era chips, §III-A "Other
  Methods"): conjugate reversed CNOTs with Hadamards.
- :mod:`repro.extensions.bridge` — the Bridge transform: execute a
  distance-2 CNOT without changing the mapping (4 CNOTs, no SWAP).
- :mod:`repro.extensions.noise_aware` — error-rate-weighted distance
  matrices for variability-aware routing (§VI "More Precise Hardware
  Modeling", Tannu & Qureshi).
- :mod:`repro.extensions.ablation` — named heuristic configurations for
  the ablation benches (basic vs look-ahead vs decay, |E| and W sweeps).

Each extension is also a pass in the composable pipeline
(:mod:`repro.pipeline.passes`): ``LegalizeDirections``,
``BridgeRewrite``, ``NoiseAwareDistance``, ``PerfectEmbedding``.  The
modules here keep the underlying transforms and the historical one-call
wrappers (now thin shims over pipeline presets); combine extensions
with :func:`repro.pipeline.compose_pipeline` instead of hand-rolled
glue.
"""

from repro.extensions.directed import legalize_directions, direction_overhead
from repro.extensions.bridge import bridge_gates, route_with_bridges
from repro.extensions.noise_aware import (
    noise_aware_config,
    noise_edge_weights,
    noise_weighted_distance,
    NoiseAwareRouter,
)
from repro.extensions.ablation import (
    ABLATION_CONFIGS,
    ablation_config,
    ablation_pipeline,
    extended_set_sweep_configs,
    weight_sweep_configs,
)
from repro.extensions.embedding import (
    find_perfect_layout,
    has_perfect_layout,
    verify_perfect_layout,
    interaction_graph,
    compile_with_embedding,
)

__all__ = [
    "find_perfect_layout",
    "has_perfect_layout",
    "verify_perfect_layout",
    "interaction_graph",
    "compile_with_embedding",
    "legalize_directions",
    "direction_overhead",
    "bridge_gates",
    "route_with_bridges",
    "noise_aware_config",
    "noise_edge_weights",
    "noise_weighted_distance",
    "NoiseAwareRouter",
    "ABLATION_CONFIGS",
    "ablation_config",
    "ablation_pipeline",
    "extended_set_sweep_configs",
    "weight_sweep_configs",
]
