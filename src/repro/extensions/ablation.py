"""Named heuristic configurations for ablation studies.

DESIGN.md calls out three stacked design decisions (basic NNC ->
look-ahead -> decay) plus two hyper-parameters (|E| and W).  These
helpers name the interesting corners so ablation benches and tests can
sweep them declaratively.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.heuristic import HeuristicConfig
from repro.exceptions import ReproError

#: The paper's stacked heuristic variants (§IV-D).
ABLATION_CONFIGS: Dict[str, HeuristicConfig] = {
    # Equation 1 only: front-layer nearest-neighbour cost.
    "basic": HeuristicConfig(mode="basic"),
    # Equation 2 without decay: adds the extended-set look-ahead.
    "lookahead": HeuristicConfig(mode="lookahead"),
    # Full Equation 2 with the paper's evaluation settings.
    "decay": HeuristicConfig(mode="decay"),
    # Decay with a deliberately aggressive delta (depth-first corner of
    # the Figure 8 trade-off).
    "decay_aggressive": HeuristicConfig(mode="decay", decay_delta=0.05),
    # Look-ahead with a tiny extended set: how little look-ahead still
    # helps (paper: "A large E is not necessary").
    "lookahead_small_e": HeuristicConfig(mode="lookahead", extended_set_size=5),
    # Look-ahead weighted almost like the front layer (W -> 1 limit).
    "lookahead_heavy_w": HeuristicConfig(
        mode="lookahead", extended_set_weight=0.9
    ),
}


def ablation_config(name: str) -> HeuristicConfig:
    """Look up a named ablation configuration."""
    try:
        return ABLATION_CONFIGS[name]
    except KeyError:
        raise ReproError(
            f"unknown ablation config {name!r}; "
            f"available: {sorted(ABLATION_CONFIGS)}"
        ) from None


def ablation_pipeline(name: str):
    """The paper's flow pinned to a named ablation configuration.

    Sweeping heuristic variants then reads declaratively::

        for name in ABLATION_CONFIGS:
            result = ablation_pipeline(name).run(circuit, device, seed=0)

    (an explicit ``config=`` in ``run`` still wins over the pin).
    """
    from repro.pipeline import Pipeline

    return Pipeline(
        "paper_default",
        name=f"ablation[{name}]",
        defaults={"config": ablation_config(name)},
    )


def extended_set_sweep_configs(
    sizes: Sequence[int] = (0, 5, 10, 20, 40, 80),
) -> List[HeuristicConfig]:
    """Configs sweeping |E| (0 disables look-ahead entirely)."""
    return [
        HeuristicConfig(mode="decay", extended_set_size=size) for size in sizes
    ]


def weight_sweep_configs(
    weights: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.99),
) -> List[HeuristicConfig]:
    """Configs sweeping the extended-set weight W in [0, 1)."""
    return [
        HeuristicConfig(mode="decay", extended_set_weight=w) for w in weights
    ]
