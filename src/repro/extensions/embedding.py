"""Perfect initial mappings via subgraph embedding (paper §V-A1).

The paper explains *why* SABRE wins big on small benchmarks: "there
often exists a physical qubit coupling subgraph that can perfectly or
almost match logical qubit coupling in the benchmarks.  Our algorithm
can find such matching".  This extension makes that notion exact: a
**perfect layout** is an injective map from logical to physical qubits
under which *every* two-qubit gate in the circuit acts on a coupled
pair — zero SWAPs ever needed.

Finding one is subgraph monomorphism (NP-hard in general); for the
small, sparse interaction graphs where perfect layouts exist, a
backtracking search with degree pruning and most-constrained-first
ordering answers quickly.  A node budget keeps the search bounded on
the dense instances (QFT's K_n) where no embedding exists.

Used as an ablation reference: when :func:`find_perfect_layout`
succeeds, SABRE's reverse traversal should also reach 0 added gates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.circuits.circuit import QuantumCircuit
from repro.core.layout import Layout
from repro.exceptions import MappingError
from repro.hardware.coupling import CouplingGraph


def interaction_graph(circuit: QuantumCircuit) -> Dict[int, Set[int]]:
    """Adjacency sets of the circuit's logical interaction graph."""
    adjacency: Dict[int, Set[int]] = {
        q: set() for q in range(circuit.num_qubits)
    }
    for gate in circuit:
        if gate.is_two_qubit:
            a, b = gate.qubits
            adjacency[a].add(b)
            adjacency[b].add(a)
    return adjacency


class _EmbeddingSearch:
    """Backtracking subgraph monomorphism with a node budget."""

    def __init__(
        self,
        adjacency: Dict[int, Set[int]],
        coupling: CouplingGraph,
        max_nodes: int,
    ) -> None:
        self.adjacency = adjacency
        self.coupling = coupling
        self.max_nodes = max_nodes
        self.nodes = 0
        # Order logical qubits most-constrained-first (highest interaction
        # degree), keeping connectivity: each next qubit prefers one with
        # already-placed neighbours so pruning bites early.
        self.order = self._variable_order()

    def _variable_order(self) -> List[int]:
        remaining = {q for q, nbrs in self.adjacency.items() if nbrs}
        isolated = [q for q, nbrs in self.adjacency.items() if not nbrs]
        order: List[int] = []
        placed: Set[int] = set()
        while remaining:
            candidates = [
                q for q in remaining if self.adjacency[q] & placed
            ] or list(remaining)
            chosen = max(
                candidates, key=lambda q: (len(self.adjacency[q]), -q)
            )
            order.append(chosen)
            placed.add(chosen)
            remaining.discard(chosen)
        return order + sorted(isolated)

    def search(self) -> Optional[Dict[int, int]]:
        """Return a logical->physical embedding dict, or None."""
        return self._extend({}, set())

    def _extend(
        self, assignment: Dict[int, int], used: Set[int]
    ) -> Optional[Dict[int, int]]:
        if len(assignment) == len(self.order):
            return dict(assignment)
        self.nodes += 1
        if self.nodes > self.max_nodes:
            return None
        logical = self.order[len(assignment)]
        needed = self.adjacency[logical]
        placed_neighbors = [q for q in needed if q in assignment]
        if placed_neighbors:
            # Candidates must be coupled to every already-placed neighbour.
            candidate_sets = [
                set(self.coupling.neighbors(assignment[q]))
                for q in placed_neighbors
            ]
            candidates = set.intersection(*candidate_sets) - used
        else:
            candidates = set(range(self.coupling.num_qubits)) - used
        # Degree pruning: a physical home needs at least as many couplings
        # as the logical qubit has interactions.
        viable = sorted(
            p for p in candidates
            if self.coupling.degree(p) >= len(needed)
        )
        for physical in viable:
            assignment[logical] = physical
            used.add(physical)
            found = self._extend(assignment, used)
            if found is not None:
                return found
            del assignment[logical]
            used.discard(physical)
        return None


def find_perfect_layout(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    max_nodes: int = 200_000,
) -> Optional[Layout]:
    """Search for a zero-SWAP initial mapping.

    Returns a full :class:`~repro.core.layout.Layout` (padding included)
    when the circuit's interaction graph embeds into the device, or
    ``None`` when no embedding exists or the node budget runs out.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise MappingError(
            f"circuit needs {circuit.num_qubits} qubits, device has "
            f"{coupling.num_qubits}"
        )
    adjacency = interaction_graph(circuit)
    search = _EmbeddingSearch(adjacency, coupling, max_nodes)
    assignment = search.search()
    if assignment is None:
        return None
    return Layout.from_dict(assignment, coupling.num_qubits)


def has_perfect_layout(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    max_nodes: int = 200_000,
) -> bool:
    """True when :func:`find_perfect_layout` succeeds within budget."""
    return find_perfect_layout(circuit, coupling, max_nodes) is not None


def verify_perfect_layout(
    circuit: QuantumCircuit, coupling: CouplingGraph, layout: Layout
) -> bool:
    """Check that every two-qubit gate is coupled under ``layout``."""
    return all(
        coupling.are_coupled(
            layout.physical(gate.qubits[0]), layout.physical(gate.qubits[1])
        )
        for gate in circuit
        if gate.is_two_qubit
    )


def compile_with_embedding(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    max_nodes: Optional[int] = None,
    **compile_kwargs,
):
    """Compile with an exact perfect layout when one exists.

    Executes the ``best_effort`` pipeline preset: the subgraph-embedding
    search runs as the ``PerfectEmbedding`` analysis pass; on success
    the circuit is routed once from the proven zero-SWAP mapping (the
    result is guaranteed SWAP-free), otherwise the pipeline falls
    through to the standard SABRE search.  This closes the rare cases
    where finite random restarts miss an existing perfect mapping
    (e.g. alu-v0_27 in Table II).

    Args:
        max_nodes: embedding-search node budget; ``None`` uses the
            preset's default.
        **compile_kwargs: forwarded to
            :meth:`repro.pipeline.Pipeline.run` (same surface as
            :func:`repro.core.compiler.compile_circuit`).
    """
    from repro.pipeline import PerfectEmbedding, Pipeline, get_preset

    if max_nodes is None:
        return Pipeline("best_effort").run(circuit, coupling, **compile_kwargs)
    factory, defaults, _ = get_preset("best_effort")
    passes = [
        PerfectEmbedding(max_nodes=max_nodes)
        if isinstance(p, PerfectEmbedding)
        else p
        for p in factory()
    ]
    custom = Pipeline(passes, name="best_effort", defaults=defaults)
    return custom.run(circuit, coupling, **compile_kwargs)
