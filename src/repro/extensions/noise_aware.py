"""Noise-aware routing (paper §VI "More Precise Hardware Modeling").

The paper's distance matrix counts SWAPs; real devices have per-coupling
error rates that can differ by an order of magnitude (Tannu & Qureshi),
so the cheapest path in SWAP count is not always the highest-fidelity
path.  This extension re-weights each edge by its SWAP log-infidelity,

    w(a, b) = -3 * ln(1 - e_ab)    (3 CNOTs per SWAP on edge (a, b)),

runs Floyd-Warshall on those weights, and feeds the result to the
unmodified SABRE search — the heuristic then steers qubits around bad
couplings.  The ablation bench compares hop-count vs noise-aware
routing under a heterogeneous noise model.

In the pass-pipeline architecture this lives as the
``NoiseAwareDistance`` analysis pass
(:mod:`repro.pipeline.passes`), which resolves the weighted matrix
through the engine cache so repeated compiles against one (device,
noise model) pair pay the weighted Floyd-Warshall once per process.
:class:`NoiseAwareRouter` remains as the one-call wrapper and now
executes the ``noise_aware`` pipeline preset.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.heuristic import HeuristicConfig
from repro.core.result import MappingResult
from repro.exceptions import HardwareError
from repro.hardware.coupling import CouplingGraph
from repro.hardware.distance import weighted_floyd_warshall
from repro.hardware.noise import NoiseModel


def noise_edge_weights(
    coupling: CouplingGraph, noise: NoiseModel
) -> Dict[Tuple[int, int], float]:
    """Per-edge SWAP log-infidelity weights, median-normalised.

    Edges with the chip-average error rate get weight close to
    ``-3 * ln(1 - e)``; noisier couplings are proportionally longer, so
    shortest paths avoid them.  Weights are normalised so the *median*
    edge has length 1.0 — typical distances then match hop counts
    (keeping the heuristic's scale and the decay trade-off comparable)
    while outlier couplings stand out proportionally to their excess
    infidelity.

    Keys are the coupling's undirected ``(low, high)`` edges, the form
    both :func:`repro.hardware.distance.weighted_floyd_warshall` and the
    engine cache's weighted fingerprint expect.
    """
    weights: Dict[Tuple[int, int], float] = {}
    for a, b in coupling.edges:
        error = noise.edge_error(a, b)
        if error >= 1.0:
            raise HardwareError(f"edge ({a}, {b}) has error rate >= 1")
        weights[(a, b)] = -3.0 * math.log1p(-error)
    ordered = sorted(weights.values())
    median = ordered[len(ordered) // 2]
    return {edge: w / median for edge, w in weights.items()}


def noise_weighted_distance(
    coupling: CouplingGraph, noise: NoiseModel
) -> List[List[float]]:
    """Distance matrix where edge length = SWAP log-infidelity.

    See :func:`noise_edge_weights` for the weighting scheme.  Callers
    wanting memoisation should go through
    :func:`repro.engine.cache.get_flat_distance_matrix` with these
    weights instead (the ``NoiseAwareDistance`` pass does).
    """
    return weighted_floyd_warshall(coupling, noise_edge_weights(coupling, noise))


def noise_aware_config(
    config: Optional[HeuristicConfig], swap_cost_penalty: float = 1.0
) -> HeuristicConfig:
    """Heuristic config with the SWAP-cost penalty enabled.

    With a weighted matrix the router should also pay for executing the
    3 CNOTs of the SWAP itself on a noisy coupler; a zero penalty in the
    caller's config (the paper default) is upgraded to ``penalty``.
    """
    if config is None:
        return HeuristicConfig(swap_cost_penalty=swap_cost_penalty)
    if config.swap_cost_penalty == 0.0:
        from dataclasses import replace

        return replace(config, swap_cost_penalty=swap_cost_penalty)
    return config


class NoiseAwareRouter:
    """SABRE with an error-weighted distance matrix.

    Drop-in alternative to :func:`repro.core.compiler.compile_circuit`
    for devices with heterogeneous coupling quality.  Internally this is
    the ``noise_aware`` pipeline preset
    (:func:`repro.pipeline.presets.get_preset`); compose the
    ``NoiseAwareDistance`` pass directly for anything fancier (directed
    devices, bridge rewrites, custom post-passes).
    """

    def __init__(
        self,
        coupling: CouplingGraph,
        noise: NoiseModel,
        config: Optional[HeuristicConfig] = None,
        swap_cost_penalty: float = 1.0,
    ) -> None:
        self.coupling = coupling
        self.noise = noise
        self.config = noise_aware_config(config, swap_cost_penalty)
        self._distance: Optional[List[List[float]]] = None

    @property
    def distance(self) -> List[List[float]]:
        """The noise-weighted matrix, computed on first access.

        ``run`` resolves the same matrix through the engine cache; this
        attribute exists for callers inspecting the weights and must
        not force an O(N^3) weighted Floyd-Warshall per construction.
        """
        if self._distance is None:
            self._distance = noise_weighted_distance(self.coupling, self.noise)
        return self._distance

    def run(
        self,
        circuit: QuantumCircuit,
        seed: int = 0,
        num_trials: int = 5,
        num_traversals: int = 3,
    ) -> MappingResult:
        """Compile with the noise-weighted metric."""
        from repro.pipeline import Pipeline

        return Pipeline("noise_aware").run(
            circuit,
            self.coupling,
            config=self.config,
            seed=seed,
            num_trials=num_trials,
            num_traversals=num_traversals,
            noise=self.noise,
        )
