"""Noise-aware routing (paper §VI "More Precise Hardware Modeling").

The paper's distance matrix counts SWAPs; real devices have per-coupling
error rates that can differ by an order of magnitude (Tannu & Qureshi),
so the cheapest path in SWAP count is not always the highest-fidelity
path.  This extension re-weights each edge by its SWAP log-infidelity,

    w(a, b) = -3 * ln(1 - e_ab)    (3 CNOTs per SWAP on edge (a, b)),

runs Floyd-Warshall on those weights, and feeds the result to the
unmodified SABRE search — the heuristic then steers qubits around bad
couplings.  The ablation bench compares hop-count vs noise-aware
routing under a heterogeneous noise model.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.compiler import compile_circuit
from repro.core.heuristic import HeuristicConfig
from repro.core.result import MappingResult
from repro.exceptions import HardwareError
from repro.hardware.coupling import CouplingGraph
from repro.hardware.distance import weighted_floyd_warshall
from repro.hardware.noise import NoiseModel


def noise_weighted_distance(
    coupling: CouplingGraph, noise: NoiseModel
) -> List[List[float]]:
    """Distance matrix where edge length = SWAP log-infidelity.

    Edges with the chip-average error rate get weight close to
    ``-3 * ln(1 - e)``; noisier couplings are proportionally longer, so
    shortest paths avoid them.  Weights are normalised so the *median*
    edge has length 1.0 — typical distances then match hop counts
    (keeping the heuristic's scale and the decay trade-off comparable)
    while outlier couplings stand out proportionally to their excess
    infidelity.
    """
    weights: Dict[Tuple[int, int], float] = {}
    for a, b in coupling.edges:
        error = noise.edge_error(a, b)
        if error >= 1.0:
            raise HardwareError(f"edge ({a}, {b}) has error rate >= 1")
        weights[(a, b)] = -3.0 * math.log1p(-error)
    ordered = sorted(weights.values())
    median = ordered[len(ordered) // 2]
    normalised = {edge: w / median for edge, w in weights.items()}
    return weighted_floyd_warshall(coupling, normalised)


class NoiseAwareRouter:
    """SABRE with an error-weighted distance matrix.

    Drop-in alternative to :func:`repro.core.compiler.compile_circuit`
    for devices with heterogeneous coupling quality.
    """

    def __init__(
        self,
        coupling: CouplingGraph,
        noise: NoiseModel,
        config: Optional[HeuristicConfig] = None,
        swap_cost_penalty: float = 1.0,
    ) -> None:
        self.coupling = coupling
        self.noise = noise
        if config is None:
            config = HeuristicConfig(swap_cost_penalty=swap_cost_penalty)
        elif config.swap_cost_penalty == 0.0:
            from dataclasses import replace

            config = replace(config, swap_cost_penalty=swap_cost_penalty)
        self.config = config
        self.distance = noise_weighted_distance(coupling, noise)

    def run(
        self,
        circuit: QuantumCircuit,
        seed: int = 0,
        num_trials: int = 5,
        num_traversals: int = 3,
    ) -> MappingResult:
        """Compile with the noise-weighted metric."""
        return compile_circuit(
            circuit,
            self.coupling,
            config=self.config,
            seed=seed,
            num_trials=num_trials,
            num_traversals=num_traversals,
            distance=self.distance,
        )
