"""CNOT-direction legalisation for asymmetric devices (paper §III-A).

Early IBM chips (QX2/QX4/QX5) allowed CNOT in only one direction per
coupling.  The paper targets the symmetric Q20 Tokyo and notes the
asymmetry problem was "overcome by technology advance"; this extension
restores support for the older chips so the mapper remains usable on
them: a CNOT whose native direction is reversed is conjugated with
Hadamards on both qubits,

    CX(a, b) = (H ⊗ H) . CX(b, a) . (H ⊗ H),

costing 4 extra single-qubit gates ("Reverse" in §III-A's terminology).
"""

from __future__ import annotations

from typing import Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.exceptions import HardwareError
from repro.hardware.coupling import CouplingGraph


def legalize_directions(
    circuit: QuantumCircuit, coupling: CouplingGraph
) -> QuantumCircuit:
    """Rewrite reversed CNOTs with H-conjugation for a directed device.

    The input must already be *coupling*-compliant (every CNOT on a
    coupled pair — i.e. routed); this pass only fixes directions.
    SWAPs are expanded first when present, since a SWAP on a directed
    edge lowers to 3 CNOTs that each need legalisation.

    Raises:
        HardwareError: if a CNOT acts on an uncoupled pair.
    """
    out = QuantumCircuit(
        circuit.num_qubits, f"{circuit.name}_directed", circuit.num_clbits
    )
    for gate in circuit:
        if gate.name == "swap":
            a, b = gate.qubits
            for cx in (
                Gate("cx", (a, b)),
                Gate("cx", (b, a)),
                Gate("cx", (a, b)),
            ):
                _emit_cx(out, cx, coupling)
        elif gate.name == "cx":
            _emit_cx(out, gate, coupling)
        else:
            out.append(gate)
    return out


def _emit_cx(out: QuantumCircuit, gate: Gate, coupling: CouplingGraph) -> None:
    control, target = gate.qubits
    if coupling.allows_cnot(control, target):
        out.append(gate)
        return
    if not coupling.are_coupled(control, target):
        raise HardwareError(
            f"CNOT {gate} acts on an uncoupled pair; route the circuit "
            "before legalising directions"
        )
    out.h(control)
    out.h(target)
    out.cx(target, control)
    out.h(control)
    out.h(target)


def direction_overhead(
    circuit: QuantumCircuit, coupling: CouplingGraph
) -> Tuple[int, int]:
    """Count (reversed CNOTs, extra 1q gates) legalisation would add."""
    reversed_count = 0
    for gate in circuit:
        if gate.name == "cx" and coupling.are_coupled(*gate.qubits):
            if not coupling.allows_cnot(*gate.qubits):
                reversed_count += 1
        elif gate.name == "swap":
            a, b = gate.qubits
            for control, target in ((a, b), (b, a), (a, b)):
                if not coupling.allows_cnot(control, target):
                    reversed_count += 1
    return reversed_count, 4 * reversed_count
