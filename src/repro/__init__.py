"""repro — a reproduction of SABRE (ASPLOS 2019).

SABRE is the SWAP-based BidiREctional heuristic search algorithm for the
qubit mapping problem introduced in:

    Gushu Li, Yufei Ding, Yuan Xie.
    "Tackling the Qubit Mapping Problem for NISQ-Era Quantum Devices."
    ASPLOS 2019.  arXiv:1809.02573.

Quickstart::

    from repro import compile_circuit, ibm_q20_tokyo, QuantumCircuit

    circ = QuantumCircuit(4, name="demo")
    circ.cx(0, 1); circ.cx(2, 3); circ.cx(1, 2); circ.cx(0, 3)
    result = compile_circuit(circ, ibm_q20_tokyo(), seed=0)
    print(result.summary())

The package also ships the substrates the paper depends on: a quantum
circuit IR and OpenQASM 2.0 parser, device models (including the IBM
Q20 Tokyo of paper Fig. 2), an A*-search baseline (Zulehner et al., the
paper's comparison point), a state-vector simulator for equivalence
checking, the paper's benchmark circuit families, and harnesses that
regenerate Table II and Figure 8.

Beyond the paper, :mod:`repro.engine` adds a production-style
multi-trial engine: best-of-K seeded trials (serial or process-pool via
``compile_circuit(..., num_trials=8, executor="process", jobs=4)``),
whole-suite batching (:func:`compile_many`), and a fingerprint-keyed
cache that computes each device's distance matrix once per process.
"""

from repro.circuits import (
    Gate,
    QuantumCircuit,
    CircuitDag,
    FlatDag,
    FrontierState,
    circuit_depth,
    reversed_circuit,
    inverted_circuit,
    decompose_to_cx_basis,
    random_circuit,
)
from repro.core import (
    Layout,
    HeuristicConfig,
    FlatDistance,
    SabreRouter,
    SabreLayout,
    MappingResult,
    compile_circuit,
)
from repro.hardware import (
    CouplingGraph,
    NoiseModel,
    distance_matrix,
    ibm_q20_tokyo,
    line_device,
    ring_device,
    grid_device,
    random_device,
)
from repro.engine import (
    BatchReport,
    CircuitReport,
    TrialsOutcome,
    compile_many,
    get_distance_matrix,
    run_trials,
)
from repro.pipeline import (
    AnalysisPass,
    CompilationContext,
    Pass,
    Pipeline,
    PropertySet,
    TransformPass,
    compose_pipeline,
    preset_names,
)
from repro.exceptions import (
    ReproError,
    CircuitError,
    QasmError,
    HardwareError,
    MappingError,
    SearchExhausted,
    VerificationError,
)

__version__ = "1.0.0"

__all__ = [
    "Gate",
    "QuantumCircuit",
    "CircuitDag",
    "FlatDag",
    "FrontierState",
    "circuit_depth",
    "reversed_circuit",
    "inverted_circuit",
    "decompose_to_cx_basis",
    "random_circuit",
    "Layout",
    "HeuristicConfig",
    "FlatDistance",
    "SabreRouter",
    "SabreLayout",
    "MappingResult",
    "compile_circuit",
    "BatchReport",
    "CircuitReport",
    "TrialsOutcome",
    "compile_many",
    "get_distance_matrix",
    "run_trials",
    "AnalysisPass",
    "CompilationContext",
    "Pass",
    "Pipeline",
    "PropertySet",
    "TransformPass",
    "compose_pipeline",
    "preset_names",
    "CouplingGraph",
    "NoiseModel",
    "distance_matrix",
    "ibm_q20_tokyo",
    "line_device",
    "ring_device",
    "grid_device",
    "random_device",
    "ReproError",
    "CircuitError",
    "QasmError",
    "HardwareError",
    "MappingError",
    "SearchExhausted",
    "VerificationError",
    "__version__",
]
