"""Baseline mappers the paper compares against (or that bound SABRE).

- :mod:`repro.baselines.astar` — the Best Known Algorithm ("BKA") of
  Table II: Zulehner, Paler, Wille (DATE 2018), layer-by-layer A* over
  SWAP sequences.  Exponential search space; a node budget reproduces
  the paper's "Out of Memory" rows.
- :mod:`repro.baselines.greedy` — Siraichi et al. (CGO 2018) style
  greedy allocation: interaction-degree initial mapping plus per-gate
  greedy movement ("fast but oversimplified", paper §VII).
- :mod:`repro.baselines.trivial` — identity layout + shortest-path
  SWAP chains: the floor any serious mapper must beat.
"""

from repro.baselines.astar import AStarMapper
from repro.baselines.greedy import GreedyMapper, interaction_degree_layout
from repro.baselines.trivial import TrivialRouter

__all__ = [
    "AStarMapper",
    "GreedyMapper",
    "interaction_degree_layout",
    "TrivialRouter",
]
