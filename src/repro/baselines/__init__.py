"""Baseline mappers the paper compares against (or that bound SABRE).

- :mod:`repro.baselines.astar` — the Best Known Algorithm ("BKA") of
  Table II: Zulehner, Paler, Wille (DATE 2018), layer-by-layer A* over
  SWAP sequences.  Exponential search space; a node budget reproduces
  the paper's "Out of Memory" rows.
- :mod:`repro.baselines.greedy` — Siraichi et al. (CGO 2018) style
  greedy allocation: interaction-degree initial mapping plus per-gate
  greedy movement ("fast but oversimplified", paper §VII).
- :mod:`repro.baselines.trivial` — identity layout + shortest-path
  SWAP chains: the floor any serious mapper must beat.
"""

from typing import Callable, Dict

from repro.baselines.astar import AStarMapper
from repro.baselines.greedy import GreedyMapper, interaction_degree_layout
from repro.baselines.trivial import TrivialRouter

#: Uniform constructor surface for the pipeline's ``BaselineRoutePass``:
#: each factory takes the coupling graph (plus mapper-specific keyword
#: overrides) and returns an object with ``run(circuit) -> MappingResult``.
#: This is what makes every baseline a drop-in routing stage — swap the
#: name in a preset and the rest of the pipeline (decomposition,
#: verification, metrics) is unchanged.
BASELINE_MAPPERS: Dict[str, Callable[..., object]] = {
    "trivial": lambda coupling, **kw: TrivialRouter(coupling, **kw),
    "greedy": lambda coupling, **kw: GreedyMapper(coupling, **kw),
    "astar": lambda coupling, **kw: AStarMapper(coupling, **kw),
}

__all__ = [
    "AStarMapper",
    "BASELINE_MAPPERS",
    "GreedyMapper",
    "interaction_degree_layout",
    "TrivialRouter",
]
