"""Siraichi-style greedy qubit allocation (paper §VII).

Siraichi et al. (CGO 2018) built the initial mapping by matching each
logical qubit's *interaction degree* (how many distinct partners it
couples with) against physical qubit outdegrees — "with no temporal
information considered" — and then moved qubits greedily, "only
resolv[ing] one two-qubit gate each time ... without considering the
effects of these local decisions".  The paper reports this is fast but
worse than IBM's mapper; we include it as the qualitative reference
point for what global optimisation (SABRE's reverse traversal) buys.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Dict, List, Set

from repro.circuits.circuit import QuantumCircuit
from repro.core.layout import Layout
from repro.core.result import MappingResult
from repro.exceptions import MappingError
from repro.hardware.coupling import CouplingGraph


def interaction_degree_layout(
    circuit: QuantumCircuit, coupling: CouplingGraph
) -> Layout:
    """Match logical interaction degrees to physical degrees (Siraichi).

    Logical qubits are placed in decreasing order of weighted
    interaction degree.  The first goes on a maximum-degree physical
    qubit; each subsequent qubit prefers a free physical qubit adjacent
    to an already-placed partner (highest remaining degree wins, ties
    broken by index).  No temporal structure is used — exactly the
    limitation §VII points out.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise MappingError(
            f"circuit needs {circuit.num_qubits} qubits, device has "
            f"{coupling.num_qubits}"
        )
    pairs = circuit.interaction_pairs()
    weight: Counter = Counter()
    partners: Dict[int, Set[int]] = {}
    for (a, b), count in pairs.items():
        weight[a] += count
        weight[b] += count
        partners.setdefault(a, set()).add(b)
        partners.setdefault(b, set()).add(a)
    order = sorted(
        range(circuit.num_qubits), key=lambda q: (-weight[q], q)
    )
    placed: Dict[int, int] = {}
    free = set(range(coupling.num_qubits))

    def best_free(candidates: Set[int]) -> int:
        return max(candidates, key=lambda p: (coupling.degree(p), -p))

    for q in order:
        adjacent_free: Set[int] = set()
        for partner in partners.get(q, ()):  # prefer sitting next to partners
            if partner in placed:
                adjacent_free.update(
                    p for p in coupling.neighbors(placed[partner]) if p in free
                )
        target = best_free(adjacent_free or free)
        placed[q] = target
        free.discard(target)
    return Layout.from_dict(placed, coupling.num_qubits)


class GreedyMapper:
    """Interaction-degree initial mapping + per-gate greedy routing."""

    def __init__(self, coupling: CouplingGraph) -> None:
        coupling.require_connected()
        self.coupling = coupling

    def run(self, circuit: QuantumCircuit) -> MappingResult:
        from repro.baselines.trivial import TrivialRouter

        start = time.perf_counter()
        layout = interaction_degree_layout(circuit, self.coupling)
        result = TrivialRouter(self.coupling, initial_layout=layout).run(circuit)
        # Re-stamp name/runtime: TrivialRouter measured only the routing.
        result.runtime_seconds = time.perf_counter() - start
        result.routing.circuit.name = f"{circuit.name}_greedy"
        return result
