"""Trivial shortest-path router — the baseline floor.

Routes one two-qubit gate at a time: when a gate's qubits are not
adjacent, SWAP the first qubit along a BFS shortest path until they
are.  No look-ahead, no layout search.  Any mapper worth publishing
must beat this; benchmarks use it to calibrate how much of SABRE's win
comes from the heuristic versus from routing at all.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.core.layout import Layout
from repro.core.result import MappingResult
from repro.core.router import RoutingResult
from repro.exceptions import MappingError
from repro.hardware.coupling import CouplingGraph


class TrivialRouter:
    """Per-gate shortest-path SWAP insertion from a fixed layout.

    Args:
        coupling: device coupling graph (connected).
        initial_layout: layout to start from (identity when omitted).
    """

    def __init__(
        self,
        coupling: CouplingGraph,
        initial_layout: Optional[Layout] = None,
    ) -> None:
        coupling.require_connected()
        self.coupling = coupling
        self.initial_layout = initial_layout

    def run(self, circuit: QuantumCircuit) -> MappingResult:
        """Route ``circuit``; returns the same result type as SABRE."""
        n_phys = self.coupling.num_qubits
        if circuit.num_qubits > n_phys:
            raise MappingError(
                f"circuit needs {circuit.num_qubits} qubits, device has {n_phys}"
            )
        start = time.perf_counter()
        layout = (self.initial_layout or Layout.trivial(n_phys)).copy()
        initial = layout.copy()
        out = QuantumCircuit(
            n_phys, f"{circuit.name}_trivial", max(circuit.num_clbits, 1)
        )
        swap_positions: List[int] = []
        for gate in circuit:
            if gate.is_two_qubit:
                self._make_adjacent(gate, layout, out, swap_positions)
            out.append(gate.remapped(layout.l2p))
        elapsed = time.perf_counter() - start
        routing = RoutingResult(
            circuit=out,
            initial_layout=initial,
            final_layout=layout,
            num_swaps=len(swap_positions),
            swap_positions=swap_positions,
        )
        return MappingResult(
            name=circuit.name,
            device_name=self.coupling.name,
            original_circuit=circuit,
            routing=routing,
            initial_layout=initial,
            final_layout=layout,
            num_swaps=routing.num_swaps,
            runtime_seconds=elapsed,
        )

    def _make_adjacent(
        self,
        gate: Gate,
        layout: Layout,
        out: QuantumCircuit,
        swap_positions: List[int],
    ) -> None:
        """SWAP logical qubit ``a`` along a shortest path toward ``b``."""
        a, b = gate.qubits
        path = self.coupling.shortest_path(layout.physical(a), layout.physical(b))
        for hop in path[1:-1]:
            occupant = layout.logical(hop)
            pa = layout.physical(a)
            swap_positions.append(out.num_gates)
            out.append(Gate("swap", (pa, hop)))
            layout.swap_logical(a, occupant)
