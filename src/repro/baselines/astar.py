"""The Best Known Algorithm (BKA): Zulehner-style layer A* (paper §VII).

Zulehner, Paler, Wille, "Efficient mapping of quantum circuits to the
IBM QX architectures" (DATE 2018) — the comparison target of Table II:

1. partition the circuit's two-qubit gates into independent layers;
2. for each layer, run A* over *sets of concurrent SWAPs* until every
   gate in the layer acts on coupled qubits — "they searched all
   possible combination of SWAP gates" (paper §IV-C1) — guided by a
   distance heuristic with look-ahead into the next layer;
3. the initial mapping is chosen from the gates at the beginning of the
   circuit only ("without global consideration", §VII).

Expanding a node enumerates every non-empty matching (set of pairwise
disjoint edges) among the couplings that touch a layer qubit, so the
branching factor — and with it the open set — grows exponentially with
the number of active qubits.  On the paper's server this exhausted
378 GB of memory for ising_model_16 and qft_20 ("Out of Memory" in
Table II); we reproduce the same failure mode with a memory guard — a
per-layer node budget (plus an optional time budget) that raises
:class:`~repro.exceptions.SearchExhausted` when tripped.

``concurrent=False`` selects a cheaper single-SWAP-per-expansion
variant (no combinatorial blowup) used as a fast well-behaved baseline
in tests and ablations.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag, DagFrontier
from repro.circuits.gates import Gate
from repro.core.layout import Layout
from repro.core.result import MappingResult
from repro.core.router import RoutingResult
from repro.exceptions import MappingError, SearchExhausted
from repro.hardware.coupling import CouplingGraph
from repro.hardware.distance import distance_matrix

Edge = Tuple[int, int]


def first_layer_layout(
    circuit: QuantumCircuit, coupling: CouplingGraph
) -> Layout:
    """Initial mapping from the first layer's gates only (Zulehner-style).

    Each first-layer gate's qubit pair is placed on a free coupled
    physical pair, preferring well-connected edges; everything else is
    identity-filled.  This is the "determined by those two-qubit gates
    at the beginning of the circuit without global consideration" the
    paper contrasts SABRE's reverse traversal against.
    """
    layers = CircuitDag(circuit).two_qubit_layers()
    placed: Dict[int, int] = {}
    free = set(range(coupling.num_qubits))
    if layers:
        for node in layers[0]:
            gate = circuit[node]
            a, b = gate.qubits
            best_pair: Optional[Edge] = None
            best_score = -1
            for pa, pb in coupling.edges:
                if pa in free and pb in free:
                    score = coupling.degree(pa) + coupling.degree(pb)
                    if score > best_score:
                        best_score = score
                        best_pair = (pa, pb)
            if best_pair is None:
                remaining = sorted(free)
                best_pair = (remaining[0], remaining[1])
            placed[a], placed[b] = best_pair
            free.discard(best_pair[0])
            free.discard(best_pair[1])
    return Layout.from_dict(placed, coupling.num_qubits)


class AStarMapper:
    """Layer-by-layer A* over concurrent SWAP sets (the Table II BKA).

    Args:
        coupling: device coupling graph.
        concurrent: expand nodes by every non-empty set of disjoint
            SWAPs (the DATE'18 scheme, exponential branching) instead of
            one SWAP at a time.
        lookahead: include the next layer in the heuristic (the DATE'18
            paper's look-ahead refinement).
        lookahead_weight: weight of the next-layer term.
        admissible: halve the heuristic so it never overestimates
            (per-layer optimal SWAP counts, far more expansions).
        max_nodes: **per-layer** budget on generated + expanded search
            nodes — the stand-in for the paper's 378 GB peak-memory
            ceiling (each node stores a full mapping).  Exceeding it
            raises :class:`SearchExhausted`.
        max_seconds: optional wall-clock budget for the whole run; also
            raises :class:`SearchExhausted`.
        distance: optional precomputed distance matrix.
    """

    def __init__(
        self,
        coupling: CouplingGraph,
        concurrent: bool = True,
        lookahead: bool = True,
        lookahead_weight: float = 0.5,
        admissible: bool = False,
        max_nodes: int = 1_000_000,
        max_seconds: Optional[float] = None,
        distance: Optional[Sequence[Sequence[float]]] = None,
    ) -> None:
        coupling.require_connected()
        self.coupling = coupling
        self.concurrent = concurrent
        self.lookahead = lookahead
        self.lookahead_weight = lookahead_weight
        self.admissible = admissible
        self.max_nodes = max_nodes
        self.max_seconds = max_seconds
        self._deadline: Optional[float] = None
        self.dist = distance if distance is not None else distance_matrix(coupling)
        self.neighbors = [coupling.neighbors(q) for q in range(coupling.num_qubits)]
        #: Search nodes generated+expanded by the most recent :meth:`run`.
        self.last_run_nodes = 0

    # ------------------------------------------------------------------

    def run(
        self, circuit: QuantumCircuit, initial_layout: Optional[Layout] = None
    ) -> MappingResult:
        """Map ``circuit``; raises :class:`SearchExhausted` over budget."""
        n_phys = self.coupling.num_qubits
        if circuit.num_qubits > n_phys:
            raise MappingError(
                f"circuit needs {circuit.num_qubits} qubits, device has {n_phys}"
            )
        start = time.perf_counter()
        self._deadline = (
            start + self.max_seconds if self.max_seconds is not None else None
        )
        self.last_run_nodes = 0
        layout = (
            initial_layout.copy()
            if initial_layout is not None
            else first_layer_layout(circuit, self.coupling)
        )
        initial = layout.copy()
        dag = CircuitDag(circuit)
        layers = dag.two_qubit_layers()
        frontier = DagFrontier(dag)
        out = QuantumCircuit(
            n_phys, f"{circuit.name}_astar", max(circuit.num_clbits, 1)
        )
        swap_positions: List[int] = []

        self._drain(frontier, layout, out)
        for index, layer in enumerate(layers):
            gates = [dag.nodes[node].gate for node in layer]
            next_gates = (
                [dag.nodes[node].gate for node in layers[index + 1]]
                if self.lookahead and index + 1 < len(layers)
                else []
            )
            swaps = self._search_layer(layout, gates, next_gates)
            for pa, pb in swaps:
                swap_positions.append(out.num_gates)
                out.append(Gate("swap", (pa, pb)))
                layout.swap_physical(pa, pb)
            for node in layer:
                frontier.execute_front_gate(node)
                out.append(dag.nodes[node].gate.remapped(layout.l2p))
            self._drain(frontier, layout, out)
        if not frontier.done:
            raise MappingError("internal error: gates left after final layer")

        elapsed = time.perf_counter() - start
        routing = RoutingResult(
            circuit=out,
            initial_layout=initial,
            final_layout=layout,
            num_swaps=len(swap_positions),
            swap_positions=swap_positions,
        )
        return MappingResult(
            name=circuit.name,
            device_name=self.coupling.name,
            original_circuit=circuit,
            routing=routing,
            initial_layout=initial,
            final_layout=layout,
            num_swaps=routing.num_swaps,
            runtime_seconds=elapsed,
        )

    def _drain(
        self, frontier: DagFrontier, layout: Layout, out: QuantumCircuit
    ) -> None:
        for node in frontier.drain_nonrouting():
            out.append(frontier.dag.nodes[node].gate.remapped(layout.l2p))

    # ------------------------------------------------------------------
    # Per-layer A*
    # ------------------------------------------------------------------

    def _heuristic(
        self,
        l2p: Sequence[int],
        gates: Sequence[Gate],
        next_gates: Sequence[Gate],
    ) -> float:
        """Estimated SWAPs to make all layer gates executable."""
        total = 0.0
        for gate in gates:
            a, b = gate.qubits
            total += self.dist[l2p[a]][l2p[b]] - 1.0
        if next_gates:
            ahead = 0.0
            for gate in next_gates:
                a, b = gate.qubits
                ahead += max(self.dist[l2p[a]][l2p[b]] - 1.0, 0.0)
            total += self.lookahead_weight * ahead
        if self.admissible:
            # One SWAP moves two qubits, shortening at most two gate
            # distances by one each.
            total = math.ceil(total / 2.0)
        return total

    def _goal(self, l2p: Sequence[int], gates: Sequence[Gate]) -> bool:
        return all(
            self.coupling.are_coupled(l2p[g.qubits[0]], l2p[g.qubits[1]])
            for g in gates
        )

    def _candidate_edges(
        self, l2p: Sequence[int], gates: Sequence[Gate]
    ) -> List[Edge]:
        """Edges touching any layer qubit's current home."""
        homes = set()
        for gate in gates:
            homes.add(l2p[gate.qubits[0]])
            homes.add(l2p[gate.qubits[1]])
        edges = set()
        for p in homes:
            for nb in self.neighbors[p]:
                edges.add((p, nb) if p < nb else (nb, p))
        return sorted(edges)

    @staticmethod
    def _matchings(edges: Sequence[Edge]) -> Iterator[Tuple[Edge, ...]]:
        """Every non-empty set of pairwise-disjoint edges (DFS order).

        This is the "all possible combinations of SWAP gates [applied]
        concurrently" expansion of the original BKA; the count grows
        exponentially with the candidate edge set.
        """
        stack: List[Tuple[Tuple[Edge, ...], frozenset, int]] = [((), frozenset(), 0)]
        while stack:
            chosen, used, start = stack.pop()
            for index in range(start, len(edges)):
                a, b = edges[index]
                if a in used or b in used:
                    continue
                extended = chosen + ((a, b),)
                yield extended
                stack.append((extended, used | {a, b}, index + 1))

    def _check_time(self, nodes: int) -> None:
        if (
            self._deadline is not None
            and nodes % 1024 == 0
            and time.perf_counter() > self._deadline
        ):
            raise SearchExhausted(
                f"A* memory guard: exceeded the time budget "
                f"({self.max_seconds} s)",
                nodes_expanded=self.last_run_nodes + nodes,
            )

    def _search_layer(
        self,
        layout: Layout,
        gates: Sequence[Gate],
        next_gates: Sequence[Gate],
    ) -> List[Edge]:
        """A* from the current mapping to any mapping satisfying the layer.

        Returns the SWAP sequence (physical pairs, concurrent sets
        flattened in order).  Raises :class:`SearchExhausted` when the
        per-layer node budget or the global deadline runs out.
        """
        start_key = tuple(layout.l2p)
        if self._goal(start_key, gates):
            return []
        counter = itertools.count()
        h0 = self._heuristic(start_key, gates, next_gates)
        open_heap: List[Tuple[float, int, int, Tuple[int, ...], Tuple[Edge, ...]]] = [
            (h0, 0, next(counter), start_key, ())
        ]
        best_g: Dict[Tuple[int, ...], int] = {start_key: 0}
        nodes = 0
        while open_heap:
            f, g, _, key, swaps = heapq.heappop(open_heap)
            if g > best_g.get(key, g):
                continue  # stale heap entry
            if self._goal(key, gates):
                self.last_run_nodes += nodes
                return list(swaps)
            edges = self._candidate_edges(key, gates)
            expansions: Iterator[Tuple[Edge, ...]]
            if self.concurrent:
                expansions = self._matchings(edges)
            else:
                expansions = (((edge),) for edge in edges)  # type: ignore[assignment]
            for swap_set in expansions:
                nodes += 1
                if nodes >= self.max_nodes:
                    self.last_run_nodes += nodes
                    raise SearchExhausted(
                        f"A* memory guard: exceeded the per-layer node "
                        f"budget ({self.max_nodes}) — the Table II "
                        "'Out of Memory' regime",
                        nodes_expanded=self.last_run_nodes,
                    )
                self._check_time(nodes)
                new_l2p = list(key)
                p2l_pairs = []
                for pa, pb in swap_set:
                    # Find the logical occupants via the *current* partial
                    # permutation being built.
                    qa = new_l2p.index(pa)
                    qb = new_l2p.index(pb)
                    new_l2p[qa], new_l2p[qb] = new_l2p[qb], new_l2p[qa]
                    p2l_pairs.append((pa, pb))
                new_key = tuple(new_l2p)
                ng = g + len(swap_set)
                if ng < best_g.get(new_key, float("inf")):
                    best_g[new_key] = ng
                    h = self._heuristic(new_key, gates, next_gates)
                    heapq.heappush(
                        open_heap,
                        (
                            ng + h,
                            ng,
                            next(counter),
                            new_key,
                            swaps + tuple(p2l_pairs),
                        ),
                    )
        raise MappingError(
            "A* search space exhausted without satisfying the layer; "
            "is the device connected?"
        )
